"""Op registry, dtypes, FLOP/byte accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import (
    ALL_DTYPES,
    OP_TYPES,
    GraphBuilder,
    TensorSpec,
    dtype,
    node_bytes,
    node_flops,
    op_def,
    promote,
)
from repro.ir.ops import is_registered


class TestDtypes:
    def test_known_dtypes(self):
        assert dtype("float32").itemsize == 4
        assert dtype("float16").itemsize == 2
        assert dtype("int32").kind == "i"
        assert dtype("bool").kind == "b"

    def test_idempotent(self):
        d = dtype("float32")
        assert dtype(d) is d

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            dtype("complex64")

    def test_promote_float_beats_int(self):
        assert promote("int32", "float16").name == "float16"

    def test_promote_wider_float_wins(self):
        assert promote("float16", "float32").name == "float32"

    def test_promote_bool_lowest(self):
        assert promote("bool", "int32").name == "int32"

    @given(st.sampled_from(ALL_DTYPES), st.sampled_from(ALL_DTYPES))
    @settings(max_examples=30, deadline=None)
    def test_promote_commutative_width(self, a, b):
        assert promote(a, b).itemsize == promote(b, a).itemsize


class TestRegistry:
    def test_all_op_types_registered(self):
        for name in OP_TYPES:
            assert is_registered(name)
            assert op_def(name).name == name

    def test_unknown_op(self):
        with pytest.raises(ValueError):
            op_def("conv3d")

    def test_prunable_set(self):
        for name in ("reshape", "convert_element_type", "broadcast_in_dim"):
            assert op_def(name).prunable
        assert not op_def("dot_general").prunable
        assert not op_def("transpose").prunable

    def test_categories_valid(self):
        cats = {"contraction", "elementwise", "reduction", "data_movement",
                "gather_scatter"}
        for name in OP_TYPES:
            assert op_def(name).category in cats


class TestAccounting:
    def _node(self, build):
        b = GraphBuilder("a")
        v = build(b)
        node = b.graph.nodes[v.id]
        ins = [b.graph.nodes[i].out for i in node.inputs]
        return node, ins

    def test_matmul_flops(self):
        node, ins = self._node(
            lambda b: b.matmul(b.input("x", (4, 8)), b.param("w", (8, 16))))
        assert node_flops(node, ins) == 2 * 4 * 16 * 8

    def test_elementwise_flops_scale_with_size(self):
        node, ins = self._node(
            lambda b: b.add(b.input("x", (100,)), b.input("y", (100,))))
        assert node_flops(node, ins) == 100

    def test_transcendental_more_expensive(self):
        n1, i1 = self._node(lambda b: b.exp(b.input("x", (64,))))
        n2, i2 = self._node(lambda b: b.neg(b.input("x", (64,))))
        assert node_flops(n1, i1) > node_flops(n2, i2)

    def test_reduction_flops_use_input_size(self):
        node, ins = self._node(
            lambda b: b.reduce_sum(b.input("x", (10, 20)), (1,)))
        assert node_flops(node, ins) == 200

    def test_data_movement_zero_flops(self):
        node, ins = self._node(
            lambda b: b.reshape(b.input("x", (4, 4)), (16,)))
        assert node_flops(node, ins) == 0.0

    def test_bytes_read_plus_written(self):
        node, ins = self._node(
            lambda b: b.add(b.input("x", (100,)), b.input("y", (100,))))
        assert node_bytes(node, ins) == 3 * 100 * 4

    def test_leaf_nodes_cost_nothing(self):
        b = GraphBuilder("a")
        x = b.input("x", (8, 8))
        node = b.graph.nodes[x.id]
        assert node_flops(node, []) == 0.0
        assert node_bytes(node, []) == 0.0

    def test_topk_flops_logarithmic(self):
        n1, i1 = self._node(lambda b: b.top_k(b.input("x", (1, 1024)), 2)[0])
        n2, i2 = self._node(lambda b: b.top_k(b.input("x", (1, 1024)), 64)[0])
        assert node_flops(n2, i2) > node_flops(n1, i1)

    def test_duplicate_registration_rejected(self):
        from repro.ir.ops import OpDef, register

        with pytest.raises(ValueError):
            register(OpDef("add", "elementwise", lambda n, i: 0.0))
