"""Pruning (§IV-B4) and fusion passes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import (
    GraphBuilder,
    fuse_elementwise,
    node_flops,
    prunable_nodes,
    prune_graph,
    pruning_ratio,
)


def _graph_flops(graph):
    total = 0.0
    for n in graph.nodes:
        ins = [graph.nodes[i].out for i in n.inputs]
        total += node_flops(n, ins)
    return total


class TestPruning:
    def test_removes_reshape_and_convert(self):
        b = GraphBuilder("p")
        x = b.input("x", (2, 6))
        r = b.reshape(x, (3, 4))
        c = b.convert(r, "float16")
        y = b.neg(c)
        b.output(y)
        g = b.build()
        pruned = prune_graph(g)
        ops = [n.op for n in pruned.operators()]
        assert "reshape" not in ops
        assert "convert_element_type" not in ops
        assert "neg" in ops

    def test_fixed_point(self, toy_graph):
        pruned = prune_graph(toy_graph)
        assert not prunable_nodes(pruned)

    def test_dtype_change_still_visible(self):
        """§IV-B4: conversion is implied by dtype mismatch across an edge."""
        b = GraphBuilder("p")
        x = b.input("x", (4,), "float32")
        c = b.convert(x, "float16")
        y = b.neg(c)
        b.output(y)
        pruned = prune_graph(b.build())
        neg = next(n for n in pruned.operators() if n.op == "neg")
        src = pruned.nodes[neg.inputs[0]]
        assert src.out.dtype != neg.out.dtype

    def test_output_producer_protected(self):
        b = GraphBuilder("p")
        x = b.input("x", (2, 6))
        r = b.reshape(x, (3, 4))
        b.output(r)
        pruned = prune_graph(b.build())
        # the reshape feeding the output node must survive
        assert any(n.op == "reshape" for n in pruned.operators())

    def test_ratio(self, tiny_gpt):
        g = tiny_gpt.stage_graph(1, 2)
        pruned = prune_graph(g)
        r = pruning_ratio(g, pruned)
        assert 0.0 < r < 0.5

    def test_prune_preserves_semantic_nodes(self, tiny_gpt):
        g = tiny_gpt.stage_graph(1, 2)
        pruned = prune_graph(g)
        for op in ("dot_general", "exp", "reduce_sum"):
            before = sum(1 for n in g.operators() if n.op == op)
            after = sum(1 for n in pruned.operators() if n.op == op)
            assert before == after


class TestFusion:
    def test_chain_fused_into_one_node(self):
        b = GraphBuilder("f")
        x = b.input("x", (16,))
        y = b.exp(b.neg(b.abs(x)))
        b.output(y)
        fused, stats = fuse_elementwise(b.build())
        assert stats.groups == 1
        assert stats.fused_nodes == 3
        f = next(n for n in fused.operators() if n.op == "fused_elementwise")
        assert f.params["n_fused"] == 3

    def test_flops_preserved(self, tiny_gpt):
        g = prune_graph(tiny_gpt.stage_graph(1, 2))
        fused, _ = fuse_elementwise(g)
        assert _graph_flops(fused) == pytest.approx(_graph_flops(g), rel=1e-9)

    def test_aggressive_fuses_more(self, tiny_gpt):
        g = prune_graph(tiny_gpt.stage_graph(1, 2))
        f1, _ = fuse_elementwise(g)
        f2, _ = fuse_elementwise(g, aggressive=True)
        assert len(f2) < len(f1) < len(g)

    def test_multi_consumer_not_absorbed(self):
        b = GraphBuilder("f")
        x = b.input("x", (16,))
        n = b.neg(x)
        y = b.add(b.exp(n), b.abs(n))  # n has two consumers
        b.output(y)
        fused, _ = fuse_elementwise(b.build())
        fused.validate()
        # the value of `neg` is still consumable by both branches
        assert _graph_flops(fused) == pytest.approx(_graph_flops(b.graph))

    def test_dot_general_never_fused(self, tiny_gpt):
        g = prune_graph(tiny_gpt.stage_graph(1, 2))
        fused, _ = fuse_elementwise(g, aggressive=True)
        before = sum(1 for n in g.operators() if n.op == "dot_general")
        after = sum(1 for n in fused.operators() if n.op == "dot_general")
        assert before == after

    def test_idempotent_on_fused_graph(self, tiny_gpt):
        g = prune_graph(tiny_gpt.stage_graph(1, 2))
        f1, _ = fuse_elementwise(g)
        f2, stats2 = fuse_elementwise(f1)
        # fused_elementwise nodes are not re-fusable by the plain pass
        assert len(f2) == len(f1) or stats2.groups >= 0
        f2.validate()


@given(chain_len=st.integers(2, 12))
@settings(max_examples=15, deadline=None)
def test_fusion_collapses_any_unary_chain(chain_len):
    b = GraphBuilder("f")
    x = b.input("x", (8,))
    v = x
    for _ in range(chain_len):
        v = b.neg(v)
    b.output(v)
    fused, stats = fuse_elementwise(b.build())
    assert stats.groups == 1
    assert stats.fused_nodes == chain_len
    fused.validate()
