"""DAGRA reachability masks, DAGPE depths, GCN adjacency."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import (
    Graph,
    GraphBuilder,
    TensorSpec,
    ancestor_matrix,
    node_depths,
    reachability_mask,
    undirected_adjacency,
)


def _chain(n):
    g = Graph("chain")
    g.add_node("iota", (), TensorSpec((2,), "float32"), "input")
    for i in range(1, n):
        g.add_node("neg", (i - 1,), TensorSpec((2,), "float32"))
    return g


def _random_dag(n, seed, p=0.3):
    rng = np.random.default_rng(seed)
    g = Graph("rand")
    g.add_node("iota", (), TensorSpec((2,), "float32"), "input")
    for i in range(1, n):
        preds = [j for j in range(i) if rng.random() < p] or [i - 1]
        g.add_node("add" if len(preds) > 1 else "neg", tuple(preds),
                   TensorSpec((2,), "float32"))
    return g


class TestAncestors:
    def test_chain_is_upper_triangular(self):
        a = ancestor_matrix(_chain(5))
        expected = np.triu(np.ones((5, 5), bool), 1)
        assert (a == expected).all()

    def test_diamond(self):
        g = Graph()
        g.add_node("iota", (), TensorSpec((2,), "float32"), "input")
        g.add_node("neg", (0,), TensorSpec((2,), "float32"))
        g.add_node("neg", (0,), TensorSpec((2,), "float32"))
        g.add_node("add", (1, 2), TensorSpec((2,), "float32"))
        a = ancestor_matrix(g)
        assert a[0, 3] and a[1, 3] and a[2, 3]
        assert not a[1, 2] and not a[2, 1]

    def test_empty(self):
        assert ancestor_matrix(Graph()).shape == (0, 0)


class TestReachabilityMask:
    def test_symmetric_with_self_loops(self, toy_graph):
        m = reachability_mask(toy_graph)
        assert (m == m.T).all()
        assert m.diagonal().all()

    def test_chain_fully_connected(self):
        m = reachability_mask(_chain(6))
        assert m.all()

    def test_parallel_branches_not_connected(self):
        g = Graph()
        g.add_node("iota", (), TensorSpec((2,), "float32"), "input")
        g.add_node("neg", (0,), TensorSpec((2,), "float32"))
        g.add_node("neg", (0,), TensorSpec((2,), "float32"))
        m = reachability_mask(g)
        assert not m[1, 2] and not m[2, 1]

    def test_k_limits_hops(self):
        m = reachability_mask(_chain(6), k=2)
        assert m[0, 2] and not m[0, 3]

    @given(n=st.integers(2, 40), seed=st.integers(0, 999))
    @settings(max_examples=20, deadline=None)
    def test_mask_equals_transitive_closure_via_networkx(self, n, seed):
        import networkx as nx

        g = _random_dag(n, seed)
        nxg = nx.DiGraph()
        nxg.add_nodes_from(range(n))
        for node in g.nodes:
            for i in node.inputs:
                nxg.add_edge(i, node.id)
        closure = nx.transitive_closure(nxg)
        m = reachability_mask(g)
        for u in range(n):
            for v in range(n):
                expected = u == v or closure.has_edge(u, v) or closure.has_edge(v, u)
                assert m[u, v] == expected


class TestDepths:
    def test_depths_array(self, toy_graph):
        d = node_depths(toy_graph)
        assert d.dtype == np.int64
        assert d.min() == 0

    @given(n=st.integers(2, 30), seed=st.integers(0, 999))
    @settings(max_examples=20, deadline=None)
    def test_depth_strictly_increases_along_edges(self, n, seed):
        g = _random_dag(n, seed)
        d = node_depths(g)
        for node in g.nodes:
            for i in node.inputs:
                assert d[i] < d[node.id]


class TestAdjacency:
    def test_symmetric(self, toy_graph):
        a = undirected_adjacency(toy_graph)
        assert np.allclose(a, a.T)

    def test_normalized_rows_bounded(self, toy_graph):
        a = undirected_adjacency(toy_graph)
        assert a.max() <= 1.0 + 1e-9
        assert (a >= 0).all()

    def test_unnormalized_binary(self, toy_graph):
        a = undirected_adjacency(toy_graph, normalize=False)
        assert set(np.unique(a)) <= {0.0, 1.0}

    def test_no_self_loops_option(self, toy_graph):
        a = undirected_adjacency(toy_graph, self_loops=False, normalize=False)
        assert a.diagonal().sum() == 0
