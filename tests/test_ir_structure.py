"""Unit tests for the communication-free structure detector.

Hand-built graphs with known structure: an elementwise chain, a Q/K/V
diamond (parallel twin branches off one producer), and a repeated-block
stack.  The detector must find exactly the structures we drew — the
collapse memo's correctness is differential-tested separately in
``test_dp_collapse.py``; here we pin the *semantics* of the signatures.
"""

from __future__ import annotations

from repro.ir import (GraphBuilder, communication_free_groups,
                      context_signatures, propagation_free_chains,
                      repeated_blocks)
from repro.ir.structure import RepeatedBlock


def chain_graph():
    """x -> relu -> exp -> tanh -> out: one propagation-free chain."""
    b = GraphBuilder("chain")
    x = b.input("x", (8, 16))
    b.output(b.tanh(b.exp(b.relu(x))), "out")
    return b.build()


def diamond_graph():
    """Q/K/V twins: three identical matmul branches off one producer."""
    b = GraphBuilder("diamond")
    x = b.input("x", (4, 8))
    heads = [b.matmul(x, b.param(f"w{i}", (8, 8))) for i in range(3)]
    acc = heads[0]
    for h in heads[1:]:
        acc = b.add(acc, h)
    b.output(acc, "out")
    return b.build()


def repeated_graph(reps: int = 4):
    """``reps`` identical layer blocks stacked sequentially."""
    b = GraphBuilder("repeated")
    h = b.input("x", (4, 8))
    for i in range(reps):
        h = b.relu(b.matmul(h, b.param(f"w{i}", (8, 8))))
    b.output(h, "out")
    return b.build()


class TestContextSignatures:
    def test_signatures_cover_every_node(self):
        g = diamond_graph()
        sigs = context_signatures(g)
        assert len(sigs) == len(g)
        assert all(isinstance(s, int) for s in sigs)

    def test_interning_is_stable_across_calls(self):
        g = diamond_graph()
        assert context_signatures(g) == context_signatures(g)

    def test_structural_twins_share_across_graphs(self):
        """Two independently built copies of the same graph intern to the
        same signature sequence — the cross-graph sharing the collapse
        memo relies on."""
        assert context_signatures(diamond_graph()) == \
            context_signatures(diamond_graph())

    def test_different_shapes_split_signatures(self):
        b = GraphBuilder("mixed")
        x = b.input("x", (4, 8))
        a = b.matmul(x, b.param("wa", (8, 8)))
        c = b.matmul(x, b.param("wb", (8, 16)))  # different weight shape
        b.output(b.add(a, b.matmul(c, b.param("wc", (16, 8)))), "out")
        g = b.build()
        sigs = context_signatures(g)
        mm = [n.id for n in g.nodes
              if n.node_type == "operator" and n.op == "dot_general"]
        a_id, c_id = mm[0], mm[1]
        assert sigs[a_id] != sigs[c_id]

    def test_fanout_is_part_of_the_context(self):
        """Same local structure, different consumer count on the producer
        → different signature (the DP amortizes by fan-out)."""
        def build(extra_consumer: bool):
            b = GraphBuilder("fan")
            x = b.input("x", (4, 8))
            h = b.matmul(x, b.param("w", (8, 8)))
            r = b.relu(h)
            if extra_consumer:
                r = b.add(r, b.exp(h))  # h now feeds two consumers
            b.output(r, "out")
            return b.build()

        g1, g2 = build(False), build(True)
        s1, s2 = context_signatures(g1), context_signatures(g2)
        relu1 = next(n.id for n in g1.nodes
                     if n.node_type == "operator" and n.op == "max")
        relu2 = next(n.id for n in g2.nodes
                     if n.node_type == "operator" and n.op == "max")
        assert s1[relu1] != s2[relu2]


class TestCommunicationFreeGroups:
    def test_diamond_twins_grouped(self):
        g = diamond_graph()
        groups = communication_free_groups(g)
        mm = [n.id for n in g.nodes
              if n.node_type == "operator" and n.op == "dot_general"]
        assert mm in groups  # the three Q/K/V matmuls collapse to one
        ws = [n.id for n in g.nodes
              if n.node_type == "literal" and n.out.shape == (8, 8)]
        assert ws in groups  # so do their weights

    def test_chain_has_no_groups(self):
        """A pure sequential chain has no structural twins."""
        assert communication_free_groups(chain_graph()) == []

    def test_repeated_layers_do_not_alias(self):
        """Stacked layers are *not* twins within one graph — each layer's
        context includes everything below it (the memo shares them across
        slice graphs instead, via identical prefixes)."""
        g = repeated_graph(3)
        sigs = context_signatures(g)
        mm = [n.id for n in g.nodes
              if n.node_type == "operator" and n.op == "dot_general"]
        assert len({sigs[i] for i in mm}) == len(mm)


class TestPropagationFreeChains:
    def test_elementwise_chain_detected(self):
        g = chain_graph()
        chains = propagation_free_chains(g, min_len=2)
        assert len(chains) == 1
        ops = [g.nodes[i].op for i in chains[0]]
        assert all(g.nodes[i].node_type == "operator" for i in chains[0])
        assert len(ops) >= 2

    def test_chain_breaks_at_contraction(self):
        g = diamond_graph()
        for chain in propagation_free_chains(g, min_len=1):
            assert all(g.nodes[i].op != "dot_general" for i in chain)

    def test_chain_breaks_at_fanout(self):
        b = GraphBuilder("fanout")
        x = b.input("x", (8, 8))
        h = b.relu(x)
        b.output(b.add(b.exp(h), b.tanh(h)), "out")  # h feeds two ops
        g = b.build()
        for chain in propagation_free_chains(g, min_len=1):
            # the relu's two consumers prevent it from chaining onward
            relu = next(n.id for n in g.nodes
                        if n.node_type == "operator" and n.op == "max")
            assert chain[0] != relu or len(chain) == 1

    def test_min_len_filters(self):
        assert propagation_free_chains(chain_graph(), min_len=99) == []


class TestRepeatedBlocks:
    def test_stacked_layers_detected(self):
        g = repeated_graph(4)
        blocks = repeated_blocks(g)
        assert blocks, "no repetition found in a 4x repeated stack"
        best = max(blocks, key=lambda blk: blk.period * blk.count)
        assert best.count >= 4

    def test_block_nodes_range(self):
        blk = RepeatedBlock(start=3, period=5, count=2)
        assert list(blk.nodes) == list(range(3, 13))

    def test_no_repetition_in_chain(self):
        """A chain of all-distinct ops reports no multi-node blocks."""
        g = chain_graph()
        for blk in repeated_blocks(g):
            assert blk.period * blk.count <= len(g)
