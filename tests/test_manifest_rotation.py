"""Manifest journal rotation: size-based keep-N generations, continuous
reads across rotations, and the breaker section of the summary."""

from __future__ import annotations

import json

from repro.experiments import manifest


def fill(root, n, start=0, payload=160):
    for i in range(start, start + n):
        manifest.append_event(root, "tick", seq=i, pad="x" * payload)


class TestRotation:
    def test_no_rotation_below_threshold(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MANIFEST_MAX_BYTES", str(1 << 20))
        fill(tmp_path, 20)
        assert manifest.rotated_paths(tmp_path) == [
            manifest.manifest_path(tmp_path)]

    def test_rotates_past_threshold_and_reads_continuously(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MANIFEST_MAX_BYTES", "4096")
        monkeypatch.setenv("REPRO_MANIFEST_KEEP", "5")
        fill(tmp_path, 120)
        paths = manifest.rotated_paths(tmp_path)
        assert len(paths) > 1, "the journal must have rotated"
        assert paths[-1] == manifest.manifest_path(tmp_path)
        # every generation is valid JSONL
        for p in paths:
            for line in p.read_text().splitlines():
                json.loads(line)
        # readers see one continuous, ordered history
        seqs = [e["seq"] for e in manifest.read_events(tmp_path)
                if e["event"] == "tick"]
        assert seqs == sorted(seqs)
        assert len(seqs) == len(set(seqs))
        assert seqs[-1] == 119

    def test_keep_n_drops_the_oldest_generation(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MANIFEST_MAX_BYTES", "4096")
        monkeypatch.setenv("REPRO_MANIFEST_KEEP", "2")
        fill(tmp_path, 400)
        live = manifest.manifest_path(tmp_path)
        generations = sorted(live.parent.glob(f"{live.name}*"))
        assert len(generations) <= 3  # live + .1 + .2, never more
        seqs = [e["seq"] for e in manifest.read_events(tmp_path)
                if e["event"] == "tick"]
        assert seqs == sorted(seqs)
        assert seqs[-1] == 399
        assert seqs[0] > 0, "the oldest generation must have been dropped"

    def test_rotation_threshold_has_a_sane_floor(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.setenv("REPRO_MANIFEST_MAX_BYTES", "1")
        fill(tmp_path, 10, payload=8)
        # a 1-byte threshold is clamped, not honored literally: the live
        # journal still accumulates lines instead of rotating per event
        assert manifest.manifest_path(tmp_path).read_text().count("\n") > 1

    def test_bad_env_values_fall_back_to_defaults(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.setenv("REPRO_MANIFEST_MAX_BYTES", "not-a-number")
        fill(tmp_path, 5)
        assert len(manifest.read_events(tmp_path)) == 5


class TestSummary:
    def test_summary_reports_breaker_transitions(self, tmp_path):
        manifest.append_event(tmp_path, "breaker", route="predict",
                              **{"from": "closed"}, to="open",
                              reason="5 failures in window of 6")
        manifest.append_event(tmp_path, "breaker", route="predict",
                              **{"from": "open"}, to="half_open",
                              reason="cooldown elapsed")
        text = manifest.summarize(manifest.read_events(tmp_path))
        assert "circuit-breaker transitions" in text
        assert "closed → open" in text
        assert "5 failures" in text

    def test_summary_spans_rotations(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MANIFEST_MAX_BYTES", "4096")
        fill(tmp_path, 120)
        manifest.append_event(tmp_path, "breaker", route="search",
                              **{"from": "closed"}, to="open", reason="x")
        text = manifest.summarize(manifest.read_events(tmp_path))
        assert "tick" in text and "breaker" in text
