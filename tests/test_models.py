"""Model zoo: Table-IV configs, layer emission, stage graphs, clustering."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import (
    BERT_LARGE,
    GPT3_1_3B,
    MOE_2_6B,
    VIT_L16,
    ModelConfig,
    benchmark_config,
    build_model,
    cluster_layers,
    stage_count,
)


class TestConfigs:
    def test_gpt_table_iv(self):
        c = GPT3_1_3B
        assert (c.seq_len, c.hidden, c.n_layers, c.n_heads, c.vocab) == (
            1024, 2048, 24, 32, 51200)

    def test_moe_table_iv(self):
        c = MOE_2_6B
        assert (c.seq_len, c.hidden, c.n_layers, c.n_heads, c.vocab) == (
            1024, 768, 32, 16, 32000)
        assert c.n_experts == 16
        assert c.expert_group == 2048

    def test_gpt_parameter_count_close_to_1_3b(self):
        m = build_model(GPT3_1_3B)
        assert 1.2e9 < m.param_count() < 1.6e9

    def test_moe_parameter_count_close_to_2_6b(self):
        m = build_model(MOE_2_6B)
        assert 2.2e9 < m.param_count() < 2.9e9

    def test_head_dim(self):
        assert GPT3_1_3B.head_dim == 64
        assert MOE_2_6B.head_dim == 48

    def test_expert_capacity(self):
        assert MOE_2_6B.expert_capacity == 2048 * 2 // 16

    def test_scaled_preserves_widths(self):
        s = GPT3_1_3B.scaled(4)
        assert s.n_layers == 4
        assert s.hidden == GPT3_1_3B.hidden
        assert s.name != GPT3_1_3B.name

    def test_invalid_heads_rejected(self):
        with pytest.raises(ValueError):
            ModelConfig("x", "gpt", 128, 100, 2, 3, 1000)

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            benchmark_config("resnet")


class TestStageGraphs:
    def test_embedding_stage_takes_tokens(self, tiny_gpt):
        g = tiny_gpt.stage_graph(0, 1)
        inp = g.inputs()[0]
        assert inp.out.dtype.kind == "i"
        assert inp.out.shape == (tiny_gpt.cfg.microbatch, tiny_gpt.cfg.seq_len)

    def test_mid_stage_takes_hidden(self, tiny_gpt):
        g = tiny_gpt.stage_graph(1, 2)
        inp = g.inputs()[0]
        assert inp.out.shape == (tiny_gpt.cfg.microbatch,
                                 tiny_gpt.cfg.seq_len, tiny_gpt.cfg.hidden)

    def test_head_stage_outputs_logits(self, tiny_gpt):
        g = tiny_gpt.stage_graph(len(tiny_gpt.layers) - 1, len(tiny_gpt.layers))
        out = g.outputs()[0]
        assert out.out.shape[-1] == tiny_gpt.cfg.vocab

    def test_stage_graph_validates(self, tiny_gpt, tiny_moe):
        for m in (tiny_gpt, tiny_moe):
            for (s, e) in [(0, 2), (1, 3), (0, len(m.layers))]:
                m.stage_graph(s, e).validate()

    def test_bad_slice_rejected(self, tiny_gpt):
        with pytest.raises(ValueError):
            tiny_gpt.stage_graph(2, 2)
        with pytest.raises(ValueError):
            tiny_gpt.stage_graph(0, 99)

    def test_microbatch_overrides_batch_dim(self, tiny_gpt):
        g = tiny_gpt.stage_graph(1, 2, microbatch=7)
        assert g.inputs()[0].out.shape[0] == 7

    def test_moe_stage_contains_router_ops(self, tiny_moe):
        g = tiny_moe.full_graph()
        ops = {n.op for n in g.operators()}
        assert {"top_k", "one_hot", "cumsum"} <= ops

    def test_attention_ops_present(self, tiny_gpt):
        g = tiny_gpt.stage_graph(1, 2)
        ops = [n.op for n in g.operators()]
        assert ops.count("dot_general") >= 6  # qkv + qk + av + out proj
        assert "transpose" in ops

    def test_graphs_grow_with_slice_length(self, tiny_gpt):
        g1 = tiny_gpt.stage_graph(1, 2)
        g2 = tiny_gpt.stage_graph(1, 3)
        assert len(g2) > len(g1)

    def test_activation_bytes(self, tiny_gpt):
        c = tiny_gpt.cfg
        assert tiny_gpt.activation_bytes() == c.microbatch * c.seq_len * c.hidden * 4


class TestEncoderFamilies:
    """BERT (bidirectional encoder) and ViT (patch-embedded encoder)."""

    def test_bert_large_config(self):
        c = BERT_LARGE
        assert (c.seq_len, c.hidden, c.n_layers, c.n_heads, c.vocab) == (
            512, 1024, 24, 16, 30522)

    def test_vit_l16_config(self):
        c = VIT_L16
        assert (c.image_size, c.patch_size, c.n_classes) == (224, 16, 1000)
        assert c.seq_len == (c.image_size // c.patch_size) ** 2

    def test_bert_parameter_count_close_to_340m(self):
        assert 3.0e8 < build_model(BERT_LARGE).param_count() < 4.2e8

    def test_vit_parameter_count_close_to_300m(self):
        assert 2.5e8 < build_model(VIT_L16).param_count() < 3.6e8

    def test_vit_bad_patch_geometry_rejected(self):
        with pytest.raises(ValueError):
            ModelConfig("x", "vit", 196, 1024, 2, 16, 0, n_classes=1000,
                        image_size=225, patch_size=16)
        with pytest.raises(ValueError):
            # seq_len must equal the patch-grid size
            ModelConfig("x", "vit", 100, 1024, 2, 16, 0, n_classes=1000,
                        image_size=224, patch_size=16)

    def test_bert_attention_is_not_causal(self):
        """The encoder omits the causal-mask add the GPT decoder carries."""
        gpt = build_model(benchmark_config("gpt", n_layers=2))
        bert = build_model(benchmark_config("bert", n_layers=2))
        gpt_adds = [n.op for n in gpt.stage_graph(1, 2).operators()
                    ].count("add")
        bert_adds = [n.op for n in bert.stage_graph(1, 2).operators()
                     ].count("add")
        assert gpt_adds == bert_adds + 1

    def test_bert_stage_graphs_validate_end_to_end(self):
        m = build_model(benchmark_config("bert", n_layers=2))
        g = m.full_graph()
        g.validate()
        assert g.inputs()[0].out.dtype.kind == "i"
        assert g.outputs()[0].out.shape[-1] == m.cfg.vocab

    def test_vit_takes_images_and_outputs_class_logits(self):
        m = build_model(benchmark_config("vit", n_layers=2))
        g = m.full_graph()
        g.validate()
        cfg = m.cfg
        assert g.inputs()[0].out.shape == (
            cfg.microbatch, cfg.in_channels, cfg.image_size, cfg.image_size)
        assert g.outputs()[0].out.shape == (cfg.microbatch, cfg.n_classes)

    def test_vit_mid_stage_takes_patch_hidden(self):
        m = build_model(benchmark_config("vit", n_layers=2))
        g = m.stage_graph(1, 2)
        assert g.inputs()[0].out.shape == (
            m.cfg.microbatch, m.cfg.seq_len, m.cfg.hidden)

    @pytest.mark.parametrize("family", ("bert", "vit"))
    def test_encoder_families_cluster_and_profile(self, family, mesh1):
        from repro.runtime import StageProfiler

        m = build_model(benchmark_config(family, n_layers=2))
        cl = cluster_layers(m, 4)
        profiler = StageProfiler(m, aggressive_fusion=True)
        times = []
        for u in range(cl.n_units):
            s, e = cl.slice_range(u, u + 1)
            times.append(profiler.profile_stage(s, e, mesh1, 1, 1).latency)
        assert all(t > 0 for t in times)


class TestClustering:
    def test_bounds_cover_all_layers(self, tiny_gpt):
        cl = cluster_layers(tiny_gpt, 3)
        assert cl.bounds[0] == 0
        assert cl.bounds[-1] == len(tiny_gpt.layers)
        assert list(cl.bounds) == sorted(cl.bounds)

    def test_exact_unit_count(self, tiny_gpt):
        for u in range(1, len(tiny_gpt.layers) + 1):
            assert cluster_layers(tiny_gpt, u).n_units == u

    def test_slice_count_triangular(self, tiny_gpt):
        cl = cluster_layers(tiny_gpt, 4)
        assert len(cl.all_slices()) == stage_count(4) == 10

    def test_balance_not_degenerate(self):
        m = build_model(benchmark_config("gpt", n_layers=8))
        cl = cluster_layers(m, 5)
        weights = [m.slice_param_count(*cl.unit_range(u))
                   for u in range(cl.n_units)]
        assert max(weights) < 3 * (sum(weights) / len(weights))

    def test_invalid_unit_count(self, tiny_gpt):
        with pytest.raises(ValueError):
            cluster_layers(tiny_gpt, 0)
        with pytest.raises(ValueError):
            cluster_layers(tiny_gpt, 99)

    def test_slice_range_checks(self, tiny_gpt_clustering):
        with pytest.raises(ValueError):
            tiny_gpt_clustering.slice_range(2, 2)

    @given(u=st.integers(1, 4))
    @settings(max_examples=4, deadline=None)
    def test_slices_are_contiguous_and_distinct(self, u, tiny_gpt):
        cl = cluster_layers(tiny_gpt, u)
        slices = cl.all_slices()
        assert len(set(slices)) == len(slices)
        for (s, e) in slices:
            assert 0 <= s < e <= len(tiny_gpt.layers)
