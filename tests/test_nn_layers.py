"""NN modules: layers, optimizer, schedules, losses."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    CosineDecay,
    GATConv,
    GCNConv,
    LayerNorm,
    Linear,
    MaskedMultiHeadAttention,
    Module,
    Sequential,
    Tensor,
    gelu,
    global_add_pool,
    mae,
    mse,
    softmax,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestLinear:
    def test_shapes(self, rng):
        lin = Linear(4, 8, rng)
        y = lin(Tensor(np.ones((2, 3, 4), np.float32)))
        assert y.shape == (2, 3, 8)

    def test_no_bias(self, rng):
        lin = Linear(4, 8, rng, bias=False)
        assert lin.b is None
        assert len(lin.parameters()) == 1


class TestLayerNorm:
    def test_normalizes(self, rng):
        ln = LayerNorm(16)
        x = Tensor(rng.normal(2.0, 3.0, size=(4, 16)).astype(np.float32))
        y = ln(x)
        assert np.allclose(y.data.mean(-1), 0, atol=1e-4)
        assert np.allclose(y.data.std(-1), 1, atol=2e-2)

    def test_gradients_flow(self, rng):
        ln = LayerNorm(8)
        x = Tensor(rng.normal(size=(2, 8)).astype(np.float32),
                   requires_grad=True)
        ln(x).sum().backward()
        assert x.grad is not None
        assert np.isfinite(x.grad).all()


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = Tensor(rng.normal(size=(3, 5)).astype(np.float32))
        s = softmax(x)
        assert np.allclose(s.data.sum(-1), 1, atol=1e-5)

    def test_mask_forbids_positions(self, rng):
        x = Tensor(rng.normal(size=(1, 4)).astype(np.float32))
        mask = np.array([[0.0, -1e9, 0.0, -1e9]], np.float32)
        s = softmax(x, mask=mask)
        assert s.data[0, 1] < 1e-6 and s.data[0, 3] < 1e-6

    def test_stable_for_large_logits(self):
        x = Tensor(np.array([[1e4, 1e4 - 1]], np.float32))
        s = softmax(x)
        assert np.isfinite(s.data).all()


class TestAttention:
    def test_mask_blocks_information_flow(self, rng):
        """A node's output must not depend on unreachable nodes."""
        mha = MaskedMultiHeadAttention(8, 2, rng)
        x = rng.normal(size=(1, 4, 8)).astype(np.float32)
        mask = np.eye(4, dtype=bool)[None]  # only self-attention
        y1 = mha(Tensor(x), mask).data.copy()
        x2 = x.copy()
        x2[0, 3] += 10.0  # perturb an unreachable node
        y2 = mha(Tensor(x2), mask).data
        assert np.allclose(y1[0, :3], y2[0, :3], atol=1e-5)

    def test_reachable_nodes_do_influence(self, rng):
        mha = MaskedMultiHeadAttention(8, 2, rng)
        x = rng.normal(size=(1, 4, 8)).astype(np.float32)
        mask = np.ones((1, 4, 4), bool)
        y1 = mha(Tensor(x), mask).data.copy()
        x2 = x.copy()
        x2[0, 3] += 10.0
        y2 = mha(Tensor(x2), mask).data
        assert not np.allclose(y1[0, 0], y2[0, 0], atol=1e-3)

    def test_bad_head_split(self, rng):
        # the message names the actual constraint (heads divide the dim),
        # not the reversed claim the original code made
        with pytest.raises(ValueError, match="n_heads must divide dim"):
            MaskedMultiHeadAttention(10, 3, rng)

    def test_bad_head_split_gat(self, rng):
        with pytest.raises(ValueError, match="n_heads must divide d_out"):
            GATConv(8, 10, rng, n_heads=3)


class TestGraphConvs:
    def test_gcn_isolated_node_keeps_self_message(self, rng):
        conv = GCNConv(4, 6, rng)
        x = Tensor(rng.normal(size=(1, 3, 4)).astype(np.float32))
        adj = np.eye(3, dtype=np.float32)[None]
        y = conv(x, adj)
        assert y.shape == (1, 3, 6)

    def test_gat_shapes(self, rng):
        conv = GATConv(4, 8, rng, n_heads=2)
        x = Tensor(rng.normal(size=(2, 5, 4)).astype(np.float32))
        adj = np.ones((2, 5, 5), np.float32)
        assert conv(x, adj).shape == (2, 5, 8)

    def test_global_add_pool_masks_padding(self, rng):
        x = Tensor(np.ones((1, 4, 3), np.float32))
        mask = np.array([[1, 1, 0, 0]], np.float32)
        g = global_add_pool(x, mask)
        assert np.allclose(g.data, 2.0)


class TestModuleMechanics:
    def test_state_dict_roundtrip(self, rng):
        m = Sequential(Linear(4, 8, rng), Linear(8, 2, rng))
        state = m.state_dict()
        for p in m.parameters():
            p.data += 1.0
        m.load_state_dict(state)
        fresh = m.state_dict()
        for k in state:
            assert np.allclose(state[k], fresh[k])

    def test_state_dict_mismatch_rejected(self, rng):
        m = Linear(4, 8, rng)
        with pytest.raises(KeyError):
            m.load_state_dict({"bogus": np.zeros(2)})

    def test_n_parameters(self, rng):
        m = Linear(4, 8, rng)
        assert m.n_parameters() == 4 * 8 + 8

    def test_named_parameters_unique(self, rng):
        m = Sequential(Linear(4, 4, rng), Linear(4, 4, rng))
        names = [k for k, _ in m.named_parameters()]
        assert len(names) == len(set(names))


class TestOptim:
    def test_adam_reduces_loss(self, rng):
        lin = Linear(3, 1, rng)
        X = rng.normal(size=(32, 3)).astype(np.float32)
        Y = X @ np.array([[1.0], [2.0], [-1.0]], np.float32)
        opt = Adam(lin.parameters(), 5e-2)
        losses = []
        for _ in range(400):
            loss = mse(lin(Tensor(X)), Y)
            opt.zero_grad()
            loss.backward()
            opt.step()
            losses.append(float(loss.data))
        assert losses[-1] < losses[0] / 10

    def test_cosine_decay_reaches_zero(self):
        lin = Linear(2, 1, np.random.default_rng(0))
        opt = Adam(lin.parameters(), 1e-3)
        sched = CosineDecay(opt, 1e-3, 10)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.0, abs=1e-9)

    def test_warmup_ramps_up(self):
        lin = Linear(2, 1, np.random.default_rng(0))
        opt = Adam(lin.parameters(), 1e-3)
        sched = CosineDecay(opt, 1e-3, 100, warmup_frac=0.2)
        assert opt.lr < 1e-3 / 2
        lrs = [sched.step() for _ in range(25)]
        assert max(lrs[:19]) <= 1e-3 + 1e-12
        assert lrs[19] == pytest.approx(1e-3, rel=0.05)

    def test_invalid_schedule_args(self):
        lin = Linear(2, 1, np.random.default_rng(0))
        opt = Adam(lin.parameters(), 1e-3)
        with pytest.raises(ValueError):
            CosineDecay(opt, 1e-3, 0)
        with pytest.raises(ValueError):
            CosineDecay(opt, 1e-3, 10, warmup_frac=1.5)


class TestLosses:
    def test_mae_mse_values(self):
        pred = Tensor(np.array([1.0, 3.0], np.float32))
        target = np.array([0.0, 1.0], np.float32)
        assert float(mae(pred, target).data) == pytest.approx(1.5)
        assert float(mse(pred, target).data) == pytest.approx(2.5)

    def test_gelu_close_to_identity_for_large_x(self):
        x = Tensor(np.array([10.0], np.float32))
        assert float(gelu(x).data[0]) == pytest.approx(10.0, rel=1e-3)


class TestTiedParameters:
    """A parameter reachable through several attributes (weight tying)
    must be discovered, updated, and serialized exactly once."""

    class _Tied(Module):
        def __init__(self):
            rng = np.random.default_rng(0)
            self.encoder = Linear(4, 4, rng)
            self.decoder = Linear(4, 4, rng)
            self.decoder.w = self.encoder.w  # tie the weights
            self.extra = [self.encoder.w]    # and a third path to it

        def forward(self, x):
            return self.decoder(self.encoder(x))

    def test_parameters_deduped(self):
        m = self._Tied()
        params = m.parameters()
        assert len(params) == len({id(p) for p in params})
        # w (tied), encoder.b, decoder.b
        assert len(params) == 3

    def test_named_parameters_first_visit_wins(self):
        m = self._Tied()
        names = [n for n, _ in m.named_parameters()]
        assert names == ["encoder.w", "encoder.b", "decoder.b"]
        assert len(names) == len(set(names))

    def test_state_dict_roundtrip(self):
        m = self._Tied()
        state = m.state_dict()
        assert set(state) == {"encoder.w", "encoder.b", "decoder.b"}
        m2 = self._Tied()
        m2.load_state_dict(state)
        assert np.array_equal(m2.encoder.w.data, m.encoder.w.data)
        assert m2.decoder.w is m2.encoder.w  # tying survives the load

    def test_tied_weight_stepped_once(self):
        """With the duplicate in the optimizer's list, Adam would apply
        the shared gradient twice per step (and double-count moments)."""
        m = self._Tied()
        w0 = m.encoder.w.data.copy()
        opt = Adam(m.parameters(), lr=0.1)
        x = Tensor(np.ones((2, 4), np.float32))
        loss = mae(m(x).sum(), np.zeros((), np.float32))
        opt.zero_grad()
        loss.backward()
        opt.step()
        stepped = m.encoder.w.data.copy()
        # Adam's bias-corrected first step moves each coordinate by at
        # most lr; a duplicated registration steps the tensor twice in
        # sequence (~2*lr on coordinates with gradient)
        assert not np.array_equal(stepped, w0)
        assert np.all(np.abs(stepped - w0) <= 0.1 + 1e-6)
