"""Adam's in-place/scratch-buffer update is bit-identical to the textbook
out-of-place formulation, across dtypes, shapes, and steps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.optim import Adam, CosineDecay
from repro.nn.tensor import Tensor


def reference_adam(datas, grads, lr, b1, b2, eps, steps):
    """The pre-optimization update, replayed op-for-op on copies."""
    ps = [d.copy() for d in datas]
    ms = [np.zeros_like(d) for d in datas]
    vs = [np.zeros_like(d) for d in datas]
    for t in range(1, steps + 1):
        bias1 = 1.0 - b1 ** t
        bias2 = 1.0 - b2 ** t
        for p, m, v, g in zip(ps, ms, vs, grads):
            if g is None:
                continue
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            p -= lr * (m / bias1) / (np.sqrt(v / bias2) + eps)
    return ps, ms, vs


@pytest.mark.parametrize("lr", [1e-3, 2e-3])
def test_bit_identical_to_reference(lr):
    rng = np.random.default_rng(7)
    shapes = [(4, 8), (8,), (3, 5, 2), (1,)]
    params = [Tensor(rng.normal(size=s), requires_grad=True) for s in shapes]
    grads = [rng.normal(size=s).astype(np.float32) for s in shapes]
    datas = [p.data.copy() for p in params]

    opt = Adam(params, lr=lr)
    steps = 5
    for _ in range(steps):
        for p, g in zip(params, grads):
            p.grad = g.copy()
        opt.step()

    ref_p, ref_m, ref_v = reference_adam(
        datas, grads, opt.lr, opt.beta1, opt.beta2, opt.eps, steps)
    for p, m, v, rp, rm, rv in zip(params, opt.m, opt.v, ref_p, ref_m, ref_v):
        assert np.array_equal(p.data, rp)  # bitwise, no tolerance
        assert np.array_equal(m, rm)
        assert np.array_equal(v, rv)


def test_skips_params_without_grad():
    p1 = Tensor(np.ones((2, 2), np.float32), requires_grad=True)
    p2 = Tensor(np.ones((2, 2), np.float32), requires_grad=True)
    opt = Adam([p1, p2], lr=1e-2)
    p1.grad = np.full((2, 2), 0.5, np.float32)
    before = p2.data.copy()
    opt.step()
    assert np.array_equal(p2.data, before)  # untouched without a grad
    assert not np.array_equal(p1.data, before)


def test_scratch_buffers_shared_across_params():
    """One flat buffer pair per dtype, sized for the largest parameter
    (the Tensor layer is float32-only, so one pair in practice)."""
    params = [Tensor(np.zeros((16, 4), np.float32), requires_grad=True),
              Tensor(np.zeros((3,), np.float32), requires_grad=True),
              Tensor(np.zeros((2, 2), np.float32), requires_grad=True)]
    opt = Adam(params)
    assert set(opt._scratch) == {np.dtype(np.float32)}
    s32 = opt._scratch[np.dtype(np.float32)]
    assert s32[0].shape == (64,) and s32[1].shape == (64,)
    assert s32[0] is not s32[1]


def test_step_does_not_grow_scratch():
    p = Tensor(np.zeros((8, 8), np.float32), requires_grad=True)
    opt = Adam([p])
    bufs = [b for pair in opt._scratch.values() for b in pair]
    for _ in range(3):
        p.grad = np.ones((8, 8), np.float32)
        opt.step()
    after = [b for pair in opt._scratch.values() for b in pair]
    assert all(a is b for a, b in zip(bufs, after))  # reused, not realloc'd


def test_cosine_decay_still_drives_lr():
    p = Tensor(np.zeros((2,), np.float32), requires_grad=True)
    opt = Adam([p], lr=1e-3)
    sched = CosineDecay(opt, 1e-3, total_epochs=10)
    lrs = [sched.step() for _ in range(10)]
    assert lrs[0] > lrs[-1]
    assert lrs[-1] == pytest.approx(0.0, abs=1e-12)
