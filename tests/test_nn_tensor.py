"""Autograd correctness: numerical gradient checks and tape mechanics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor
from repro.nn.tensor import no_grad, segment_sum, spmm, take_rows


def numerical_grad(f, x, eps=1e-3):
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    for _ in it:
        i = it.multi_index
        x[i] += eps
        f1 = f(x)
        x[i] -= 2 * eps
        f0 = f(x)
        x[i] += eps
        g[i] = (f1 - f0) / (2 * eps)
    return g


def check_op(op, shape=(3, 4), seed=0, tol=2e-2, positive=False):
    rng = np.random.default_rng(seed)
    x0 = rng.normal(size=shape)
    if positive:
        x0 = np.abs(x0) + 0.5

    def f(xa):
        t = Tensor(xa.astype(np.float32), requires_grad=True)
        return float(op(t).sum().data)

    t = Tensor(x0.astype(np.float32), requires_grad=True)
    loss = op(t).sum()
    loss.backward()
    ng = numerical_grad(f, x0.copy())
    err = np.abs(t.grad - ng).max() / (np.abs(ng).max() + 1e-6)
    assert err < tol, f"grad error {err}"


class TestUnaryGrads:
    def test_exp(self):
        check_op(lambda t: t.exp())

    def test_log(self):
        check_op(lambda t: t.log(), positive=True)

    def test_sqrt(self):
        check_op(lambda t: t.sqrt(), positive=True)

    def test_tanh(self):
        check_op(lambda t: t.tanh())

    def test_relu(self):
        check_op(lambda t: t.relu())

    def test_leaky_relu(self):
        check_op(lambda t: t.leaky_relu())

    def test_abs(self):
        check_op(lambda t: t.abs(), positive=True)

    def test_neg(self):
        check_op(lambda t: -t)

    def test_pow(self):
        check_op(lambda t: t ** 3)


class TestBinaryGrads:
    def test_add_broadcast(self):
        rng = np.random.default_rng(1)
        b0 = rng.normal(size=(4,))

        def op(t):
            return t + Tensor(b0.astype(np.float32))

        check_op(op)

    def test_mul(self):
        rng = np.random.default_rng(2)
        other = Tensor(rng.normal(size=(3, 4)).astype(np.float32))
        check_op(lambda t: t * other)

    def test_div(self):
        rng = np.random.default_rng(3)
        other = Tensor((np.abs(rng.normal(size=(3, 4))) + 1).astype(np.float32))
        check_op(lambda t: t / other)

    def test_both_sides_of_mul_get_grads(self):
        a = Tensor(np.ones((2, 2), np.float32), requires_grad=True)
        b = Tensor(2 * np.ones((2, 2), np.float32), requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, 2.0)
        assert np.allclose(b.grad, 1.0)

    def test_matmul(self):
        rng = np.random.default_rng(4)
        w = Tensor(rng.normal(size=(4, 5)).astype(np.float32))
        check_op(lambda t: t @ w)

    def test_batched_matmul(self):
        rng = np.random.default_rng(5)
        w = Tensor(rng.normal(size=(2, 4, 5)).astype(np.float32))
        check_op(lambda t: t @ w, shape=(2, 3, 4))

    def test_matmul_broadcast_rhs_grad(self):
        """Gradient of a 2-D rhs under a 3-D lhs is summed over batch."""
        rng = np.random.default_rng(6)
        x = Tensor(rng.normal(size=(2, 3, 4)).astype(np.float32))
        w = Tensor(rng.normal(size=(4, 5)).astype(np.float32),
                   requires_grad=True)
        (x @ w).sum().backward()
        assert w.grad.shape == (4, 5)


class TestShapeGrads:
    def test_reshape(self):
        check_op(lambda t: t.reshape(4, 3))

    def test_transpose(self):
        check_op(lambda t: t.transpose(1, 0))

    def test_swapaxes(self):
        check_op(lambda t: t.swapaxes(0, 1), shape=(2, 3, 4))

    def test_sum_axis(self):
        check_op(lambda t: t.sum(axis=1))

    def test_sum_keepdims(self):
        check_op(lambda t: t.sum(axis=0, keepdims=True))

    def test_mean(self):
        check_op(lambda t: t.mean(axis=-1))

    def test_max(self):
        check_op(lambda t: t.max(axis=1), seed=7)


class TestSparseOps:
    def test_take_rows_grad_scatters(self):
        x = Tensor(np.arange(12, dtype=np.float32).reshape(4, 3),
                   requires_grad=True)
        idx = np.array([0, 2, 2])
        take_rows(x, idx).sum().backward()
        assert np.allclose(x.grad[:, 0], [1, 0, 2, 0])

    def test_segment_sum_forward_and_grad(self):
        x = Tensor(np.ones((4, 2), np.float32), requires_grad=True)
        seg = np.array([0, 0, 1, 1])
        out = segment_sum(x, seg, 3)
        assert np.allclose(out.data[:, 0], [2, 2, 0])
        out.sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_spmm_matches_dense(self):
        import scipy.sparse as sp

        rng = np.random.default_rng(0)
        a = sp.random(6, 6, density=0.4, random_state=0, format="csr")
        x0 = rng.normal(size=(6, 3))

        def f(xa):
            t = Tensor(xa.astype(np.float32), requires_grad=True)
            return float(spmm(a, t).sum().data)

        t = Tensor(x0.astype(np.float32), requires_grad=True)
        spmm(a, t).sum().backward()
        ng = numerical_grad(f, x0.copy())
        assert np.abs(t.grad - ng).max() < 2e-2


class TestTapeMechanics:
    def test_fanout_accumulation(self):
        x = Tensor(np.ones(3, np.float32), requires_grad=True)
        y = x * 2 + x * 3
        y.sum().backward()
        assert np.allclose(x.grad, 5.0)

    def test_deep_chain_does_not_recurse(self):
        x = Tensor(np.ones(2, np.float32), requires_grad=True)
        y = x
        for _ in range(5000):
            y = y + 0.0
        y.sum().backward()  # must not hit the recursion limit
        assert np.allclose(x.grad, 1.0)

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(2)).backward()

    def test_no_grad_suppresses_tape(self):
        x = Tensor(np.ones(2, np.float32), requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad
        assert y._backward is None

    def test_tape_freed_after_backward(self):
        x = Tensor(np.ones(2, np.float32), requires_grad=True)
        y = (x * 2).exp()
        z = y.sum()
        z.backward()
        assert y._backward is None and y._prev == ()
        assert x.grad is not None  # leaf keeps its grad

    @given(shape=st.tuples(st.integers(1, 4), st.integers(1, 4)))
    @settings(max_examples=20, deadline=None)
    def test_unbroadcast_shapes(self, shape):
        x = Tensor(np.ones(shape, np.float32), requires_grad=True)
        y = x + np.ones((2,) + shape, np.float32)
        y.sum().backward()
        assert x.grad.shape == shape
        assert np.allclose(x.grad, 2.0)
