"""ShardingSpec algebra and resharding costs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import PLATFORM2
from repro.ir import TensorSpec
from repro.parallel import REPLICATED, ShardingSpec, candidate_specs, reshard_time


@pytest.fixture(scope="module")
def lv22():
    return PLATFORM2.mesh(3).logical(2, 2)


@pytest.fixture(scope="module")
def lv21():
    return PLATFORM2.mesh(2).logical(2, 1)


class TestShardingSpec:
    def test_replicated(self):
        assert REPLICATED.is_replicated
        assert str(REPLICATED) == "R"

    def test_duplicate_dim_rejected(self):
        with pytest.raises(ValueError):
            ShardingSpec(((0, "dp"), (0, "mp")))

    def test_duplicate_axis_rejected(self):
        with pytest.raises(ValueError):
            ShardingSpec(((0, "dp"), (1, "dp")))

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError):
            ShardingSpec(((0, "pp"),))

    def test_shard_factor(self, lv22):
        assert REPLICATED.shard_factor(lv22) == 1
        assert ShardingSpec.shard(0, "dp").shard_factor(lv22) == 2
        assert ShardingSpec.shard2(0, "dp", 1, "mp").shard_factor(lv22) == 4

    def test_valid_for_divisibility(self, lv22):
        t = TensorSpec((3, 8), "float32")
        assert not ShardingSpec.shard(0, "dp").valid_for(t, lv22)
        assert ShardingSpec.shard(1, "mp").valid_for(t, lv22)

    def test_valid_for_rank(self, lv22):
        t = TensorSpec((8,), "float32")
        assert not ShardingSpec.shard(1, "mp").valid_for(t, lv22)

    def test_normalized_drops_size1_axes(self, lv21):
        s = ShardingSpec.shard2(0, "dp", 1, "mp")
        n = s.normalized(lv21)  # mp axis has size 1 on a (2,1) view
        assert n.assignments == ((0, "dp"),)

    def test_local_bytes(self, lv22):
        t = TensorSpec((8, 8), "float32")
        assert ShardingSpec.shard(0, "dp").local_bytes(t, lv22) == t.nbytes / 2

    def test_candidate_specs_valid(self, lv22):
        t = TensorSpec((4, 1024, 2048), "float32")
        cands = candidate_specs(t, lv22)
        assert REPLICATED in cands
        assert len(cands) == len({c.assignments for c in cands})
        for c in cands:
            assert c.valid_for(t, lv22)


class TestReshardTime:
    def test_identical_free(self, lv22):
        t = TensorSpec((8, 8), "float32")
        s = ShardingSpec.shard(0, "dp")
        assert reshard_time(s, s, t, lv22) == 0.0

    def test_from_replicated_free(self, lv22):
        t = TensorSpec((8, 8), "float32")
        assert reshard_time(REPLICATED, ShardingSpec.shard(0, "dp"), t, lv22) == 0.0

    def test_to_replicated_costs_allgather(self, lv22):
        t = TensorSpec((1024, 1024), "float32")
        c = reshard_time(ShardingSpec.shard(0, "dp"), REPLICATED, t, lv22)
        assert c > 0

    def test_kept_axis_free(self, lv22):
        t = TensorSpec((1024, 1024), "float32")
        s1 = ShardingSpec.shard(0, "dp")
        s2 = ShardingSpec.shard2(0, "dp", 1, "mp")
        assert reshard_time(s1, s2, t, lv22) == 0.0

    def test_moved_axis_charged(self, lv22):
        t = TensorSpec((1024, 1024), "float32")
        s1 = ShardingSpec.shard(1, "mp")
        s2 = ShardingSpec.shard(0, "mp")
        assert reshard_time(s1, s2, t, lv22) > 0

    def test_cross_node_reshard_slower(self):
        mesh3 = PLATFORM2.mesh(3)
        lv = mesh3.logical(2, 2)  # dp crosses nodes, mp stays inside
        t = TensorSpec((4096, 4096), "float32")
        via_dp = reshard_time(ShardingSpec.shard(0, "dp"), REPLICATED, t, lv)
        via_mp = reshard_time(ShardingSpec.shard(1, "mp"), REPLICATED, t, lv)
        assert via_dp > via_mp * 5

    def test_size1_axis_normalizes_away(self, lv21):
        t = TensorSpec((64, 64), "float32")
        s = ShardingSpec.shard(1, "mp")  # size-1 axis on this view
        assert reshard_time(s, REPLICATED, t, lv21) == 0.0

    @given(nbytes_pow=st.integers(10, 28))
    @settings(max_examples=20, deadline=None)
    def test_cost_monotone_in_tensor_size(self, nbytes_pow, lv22):
        t1 = TensorSpec((2 ** nbytes_pow,), "float32")
        t2 = TensorSpec((2 ** (nbytes_pow + 1),), "float32")
        s = ShardingSpec.shard(0, "dp")
        assert (reshard_time(s, REPLICATED, t1, lv22)
                <= reshard_time(s, REPLICATED, t2, lv22))
