"""Per-op strategy enumeration and the intra-op optimizer."""

import pytest

from repro.cluster import PLATFORM2
from repro.ir import GraphBuilder, TensorSpec
from repro.parallel import (
    REPLICATED,
    ShardingSpec,
    node_strategies,
    optimize_stage,
)
from repro.runtime import execute_plan


@pytest.fixture(scope="module")
def lv22():
    return PLATFORM2.mesh(3).logical(2, 2)


@pytest.fixture(scope="module")
def lv21():
    return PLATFORM2.mesh(2).logical(2, 1)


@pytest.fixture(scope="module")
def lv12():
    return PLATFORM2.mesh(2).logical(1, 2)


def _matmul_node(lhs_shape, rhs_shape, out_shape, contract):
    b = GraphBuilder("s")
    x = b.input("x", lhs_shape)
    w = b.param("w", rhs_shape)
    y = b.einsum_contract(x, w, out_shape, contract)
    return b.graph.nodes[y.id], [b.graph.nodes[0].out, b.graph.nodes[1].out]


class TestDotStrategies:
    def test_replicated_always_present(self, lv22):
        node, ins = _matmul_node((8, 16), (16, 32), (8, 32), 16)
        strats = node_strategies(node, ins, lv22)
        assert any(s.out == REPLICATED and s.factor == 1 for s in strats)

    def test_batch_move_uses_dp(self, lv21):
        node, ins = _matmul_node((8, 16), (16, 32), (8, 32), 16)
        strats = node_strategies(node, ins, lv21)
        batch = [s for s in strats if "batch0@dp" in s.name]
        assert batch and batch[0].out.axis_of(0) == "dp"
        assert batch[0].factor == 2
        assert batch[0].comm_time == 0.0

    def test_no_mp_moves_on_pure_dp_view(self, lv21):
        node, ins = _matmul_node((8, 16), (16, 32), (8, 32), 16)
        strats = node_strategies(node, ins, lv21)
        assert not any("col@" in s.name or "row@" in s.name for s in strats)

    def test_megatron_col_row_on_mp_view(self, lv12):
        node, ins = _matmul_node((8, 16), (16, 32), (8, 32), 16)
        names = {s.name for s in node_strategies(node, ins, lv12)}
        assert any("col@mp" in n for n in names)
        assert any("row@mp" in n for n in names)

    def test_row_parallel_allreduces(self, lv12):
        node, ins = _matmul_node((8, 16), (16, 32), (8, 32), 16)
        row = next(s for s in node_strategies(node, ins, lv12)
                   if "row@mp" in s.name)
        assert row.comm_time > 0
        assert row.out == REPLICATED

    def test_gradient_sync_move(self, lv21):
        # dW = x^T g: both operands rank 3, contraction over batch
        node, ins = _matmul_node((8, 64, 16), (8, 64, 32), (16, 32), 8 * 64)
        strats = node_strategies(node, ins, lv21)
        gs = [s for s in strats if "gradsync@dp" in s.name]
        assert gs, "batch-contraction (DP gradient sync) strategy missing"
        assert gs[0].comm_time > 0  # the gradient all-reduce

    def test_combined_dp_mp_strategy(self, lv22):
        node, ins = _matmul_node((8, 16), (16, 32), (8, 32), 16)
        strats = node_strategies(node, ins, lv22)
        both = [s for s in strats if s.factor == 4]
        assert both, "no strategy uses both mesh axes"

    def test_batched_attention_einsum(self, lv22):
        # q @ k^T: (B, h, S, d) x (B, h, S, d) -> (B, h, S, S)
        node, ins = _matmul_node((4, 8, 64, 16), (4, 8, 64, 16),
                                 (4, 8, 64, 64), 16)
        strats = node_strategies(node, ins, lv22)
        assert any(s.out.axis_of(0) == "dp" for s in strats)  # batch
        assert any(s.out.axis_of(1) == "mp" for s in strats)  # heads


class TestElementwiseStrategies:
    def test_broadcast_operand_stays_replicated(self, lv21):
        b = GraphBuilder("s")
        x = b.input("x", (8, 32))
        bias = b.param("bias", (32,))
        y = b.add(x, bias)
        node = b.graph.nodes[y.id]
        ins = [b.graph.nodes[i].out for i in node.inputs]
        strat = next(s for s in node_strategies(node, ins, lv21)
                     if s.out.axis_of(0) == "dp")
        assert strat.ins[0].axis_of(0) == "dp"
        assert strat.ins[1] == REPLICATED

    def test_reduction_maps_surviving_dims(self, lv21):
        b = GraphBuilder("s")
        x = b.input("x", (8, 32))
        y = b.reduce_sum(x, (1,))
        node = b.graph.nodes[y.id]
        ins = [b.graph.nodes[i].out for i in node.inputs]
        strat = next(s for s in node_strategies(node, ins, lv21)
                     if s.out.axis_of(0) == "dp")
        assert strat.ins[0].axis_of(0) == "dp"

    def test_transpose_propagates_through_perm(self, lv12):
        b = GraphBuilder("s")
        x = b.input("x", (4, 8, 64, 16))
        y = b.transpose(x, (0, 2, 1, 3))
        node = b.graph.nodes[y.id]
        ins = [b.graph.nodes[i].out for i in node.inputs]
        strats = node_strategies(node, ins, lv12)
        s = next(s for s in strats if s.out.axis_of(1) == "mp")
        assert s.ins[0].axis_of(2) == "mp"


class TestIntraOpOptimizer:
    def test_plan_covers_all_nodes(self, tiny_gpt, lv21):
        from repro.ir import build_training_graph

        tg = build_training_graph(tiny_gpt.stage_graph(1, 2))
        plan = optimize_stage(tg, lv21)
        assert len(plan.assignments) == len(tg)

    def test_consistent_leaf_edges_free(self, tiny_gpt, lv21):
        from repro.ir import build_training_graph

        tg = build_training_graph(tiny_gpt.stage_graph(1, 2))
        plan = optimize_stage(tg, lv21)
        prof = execute_plan(plan, noise=False)
        assert prof.latency > 0

    def test_parallel_beats_replicated_on_fast_mesh(self, tiny_gpt, mesh2, mesh1):
        from repro.runtime import StageProfiler

        prof = StageProfiler(tiny_gpt, aggressive_fusion=True)
        single = prof.profile_stage(1, 3, mesh1, 1, 1)
        dp2 = prof.profile_stage(1, 3, mesh2, 2, 1)
        assert dp2.latency < single.latency

    def test_dp_differs_from_mp(self, tiny_gpt, mesh2):
        from repro.runtime import StageProfiler

        prof = StageProfiler(tiny_gpt, aggressive_fusion=True)
        dp = prof.profile_stage(1, 3, mesh2, 2, 1)
        mp = prof.profile_stage(1, 3, mesh2, 1, 2)
        assert dp.latency != mp.latency

    def test_estimated_time_positive(self, toy_graph, lv21):
        plan = optimize_stage(toy_graph, lv21)
        assert plan.estimated_time > 0
