"""The perf package: percentiles, recorders, and the micro-bench harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.perf.timing import PerfRecorder, TimingStats, percentile


class TestPercentile:
    def test_matches_numpy_linear(self):
        rng = np.random.default_rng(0)
        xs = rng.exponential(size=37).tolist()
        for q in (0, 25, 50, 90, 95, 100):
            assert percentile(xs, q) == pytest.approx(
                float(np.percentile(xs, q)))

    def test_single_sample(self):
        assert percentile([3.5], 95) == 3.5

    def test_errors(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestPerfRecorder:
    def test_time_and_stats(self):
        rec = PerfRecorder()
        for _ in range(5):
            with rec.time("solve"):
                pass
        stats = rec.stats("solve")
        assert isinstance(stats, TimingStats)
        assert stats.n == 5
        assert stats.total_s >= 0.0
        assert stats.p95_ms >= stats.p50_ms >= 0.0
        assert stats.ops_per_sec > 0

    def test_counters_and_summary(self):
        rec = PerfRecorder()
        rec.count("cases")
        rec.count("cases", 4)
        rec.add_sample("t", 0.002)
        summary = rec.summary()
        assert summary["counters"] == {"cases": 5}
        assert summary["timers"]["t"]["n"] == 1
        assert summary["timers"]["t"]["p50_ms"] == pytest.approx(2.0)


class TestMicrobenchHarness:
    def test_quick_harness_end_to_end(self, tiny_gpt_profiler):
        """Quick mode: small case set, differential identity, sane JSON."""
        from repro.experiments.profiles import PROFILES
        from repro.perf.microbench import SCHEMA, run_intraop_microbench

        result = run_intraop_microbench(PROFILES["smoke"], quick=True,
                                        repeats=1)
        assert result["schema"] == SCHEMA
        assert result["differential"]["identical"] is True
        assert result["differential"]["checked"] == result["n_cases"] > 0
        assert result["overall"]["speedup"] > 0
        for bucket in result["buckets"].values():
            assert bucket["n_cases"] > 0
            assert bucket["vectorized"]["p50_ms"] > 0
            assert bucket["reference"]["p50_ms"] > 0
