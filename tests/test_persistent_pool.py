"""Persistent worker pool: reuse, restarts, shared-memory transport,
and crash healing.

Bit-identity of pool results against the serial loop is covered by the
engine/supervisor/chaos suites (which now run over the pool by default);
here we pin the *pool-specific* behaviors — that workers actually
persist across calls, that every staleness condition forces a restart,
that large numpy results ride shared memory, and that the pool heals
itself around worker deaths instead of wedging.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.experiments.pool as pool_mod
from repro import faults
from repro.experiments.engine import parallel_map, supervised_map


@pytest.fixture(autouse=True)
def fresh_pool():
    """Each test starts (and ends) with no live pool and zeroed stats."""
    pool_mod._shutdown_global()
    pool_mod.pool_stats().reset()
    yield
    pool_mod._shutdown_global()


def _double(x):
    return x * 2


def _triple(x):
    return x * 3


def _big_block(x):
    # 512*512 float64 = 2 MiB, past the SHM_MIN_BYTES threshold
    return {"scaled": np.full((512, 512), float(x)), "tag": x}


def _boom(x):
    if x == 2:
        raise ValueError("boom at two")
    return x


class TestReuse:
    def test_pool_persists_across_calls(self):
        for _ in range(3):
            assert parallel_map(_double, list(range(8)), jobs=2) == \
                [2 * x for x in range(8)]
        stats = pool_mod.pool_stats()
        assert stats.pools_started == 1
        assert stats.workers_spawned == 2
        assert stats.tasks == 24

    def test_fn_change_restarts(self):
        """Workers inherit the callable at fork; a different fn means the
        old workers would run the wrong code."""
        parallel_map(_double, [1, 2, 3], jobs=2)
        assert parallel_map(_triple, [1, 2, 3], jobs=2) == [3, 6, 9]
        assert pool_mod.pool_stats().pools_started == 2

    def test_env_change_restarts(self, monkeypatch):
        """Workers read REPRO_* from the environment they forked with."""
        parallel_map(_double, [1, 2, 3], jobs=2)
        monkeypatch.setenv("REPRO_CELL_RETRIES", "5")
        assert parallel_map(_double, [1, 2, 3], jobs=2) == [2, 4, 6]
        assert pool_mod.pool_stats().pools_started == 2

    def test_wider_caller_restarts(self):
        parallel_map(_double, list(range(8)), jobs=2)
        parallel_map(_double, list(range(8)), jobs=4)
        stats = pool_mod.pool_stats()
        assert stats.pools_started == 2
        # and a subsequent narrower call reuses the wide pool
        parallel_map(_double, list(range(8)), jobs=2)
        assert stats.pools_started == 2

    def test_jobs_one_stays_in_process(self):
        seen = []
        parallel_map(lambda x: seen.append(x) or x, [1, 2, 3], jobs=1)
        assert seen == [1, 2, 3]
        assert pool_mod.pool_stats().pools_started == 0

    def test_off_gate_uses_legacy_forking(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL", "off")
        assert parallel_map(_double, list(range(6)), jobs=2) == \
            [2 * x for x in range(6)]
        assert pool_mod.pool_stats().pools_started == 0


class TestSharedMemoryTransport:
    def test_large_arrays_ride_shared_memory(self):
        out = parallel_map(_big_block, [1, 2, 3, 4], jobs=2)
        for x, block in zip([1, 2, 3, 4], out):
            assert block["tag"] == x
            np.testing.assert_array_equal(
                block["scaled"], np.full((512, 512), float(x)))
        stats = pool_mod.pool_stats()
        assert stats.shm_arrays == 4
        assert stats.shm_bytes == 4 * 512 * 512 * 8

    def test_small_results_stay_on_the_pipe(self):
        parallel_map(_double, list(range(6)), jobs=2)
        assert pool_mod.pool_stats().shm_arrays == 0


class TestHealing:
    def test_task_exception_propagates_without_killing_the_pool(self):
        with pytest.raises(ValueError, match="boom at two"):
            parallel_map(_boom, [1, 2, 3, 4], jobs=2)
        # same fn, same env: the surviving workers serve the next call
        assert parallel_map(_boom, [1, 3, 4, 5], jobs=2) == [1, 3, 4, 5]
        assert pool_mod.pool_stats().pools_started == 1

    def test_dead_pool_detected_and_restarted(self):
        parallel_map(_double, [1, 2, 3, 4], jobs=2)
        worker = pool_mod._POOL.workers[0]
        worker.proc.terminate()
        worker.proc.join(timeout=5.0)
        assert parallel_map(_double, [5, 6, 7, 8], jobs=2) == [10, 12, 14, 16]
        assert pool_mod.pool_stats().pools_started == 2

    def test_supervised_crash_respawns_worker(self, monkeypatch):
        """The ISSUE chaos scenario: a worker dies mid-grid inside the
        persistent pool, the pool respawns it, and the results are
        bit-identical to the serial loop."""
        monkeypatch.setenv(faults.ENV_VAR, "worker_crash:at=1")
        out = supervised_map(_double, [0, 1, 2], jobs=2, retries=2,
                             backoff=0.01)
        assert out.results == [0, 2, 4] and out.failures == []
        assert out.attempts == 4  # the crash cost exactly one resubmission
        stats = pool_mod.pool_stats()
        assert stats.workers_respawned >= 1
        # the healed pool is back at full strength and keeps serving
        pool = pool_mod._POOL
        assert pool is not None and pool.alive()
        assert len(pool.workers) == 2
        out2 = supervised_map(_double, [0, 1, 2], jobs=2, retries=2,
                              backoff=0.01)
        assert out2.results == [0, 2, 4]
