"""White-box pipeline model (Eqn 4) vs the discrete-event 1F1B simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import NVLINK, TEN_GBE
from repro.runtime import PipelineSimulator, simulated_latency, whitebox_latency


class TestWhitebox:
    def test_single_stage_single_microbatch(self):
        assert whitebox_latency([2.0], 1) == 2.0

    def test_eqn4_formula(self):
        # T = sum + (B-1) * max
        t = whitebox_latency([1.0, 3.0, 2.0], 4)
        assert t == pytest.approx((1 + 3 + 2) + 3 * 3.0)

    def test_empty(self):
        assert whitebox_latency([], 4) == 0.0

    def test_invalid_microbatches(self):
        with pytest.raises(ValueError):
            whitebox_latency([1.0], 0)

    def test_bottleneck_dominates_large_B(self):
        t = whitebox_latency([1.0, 5.0], 1000)
        assert t == pytest.approx(999 * 5.0 + 6.0)


class TestSimulator:
    def test_single_stage_serializes_microbatches(self):
        sim = simulated_latency([2.0], 3)
        assert sim == pytest.approx(6.0)

    @given(stages=st.lists(st.floats(0.05, 2.0), min_size=1, max_size=6),
           B=st.integers(1, 12))
    @settings(max_examples=60, deadline=None)
    def test_combined_mode_equals_eqn4_exactly(self, stages, B):
        """Flow-shop identity: the simulated makespan with indivisible
        (stage, microbatch) passes IS Eqn 4 when transfers are free."""
        wb = whitebox_latency(stages, B)
        sim = simulated_latency(stages, B)
        assert sim == pytest.approx(wb, rel=1e-9)

    @given(stages=st.lists(st.floats(0.05, 2.0), min_size=1, max_size=6),
           B=st.integers(1, 12))
    @settings(max_examples=40, deadline=None)
    def test_split_backward_within_work_envelope(self, stages, B):
        """1F1B fwd/bwd interleaving stays between the bottleneck's busy
        time and the fully serialized schedule."""
        sim = simulated_latency(stages, B, split_backward=True)
        assert sim >= B * max(stages) - 1e-9  # bottleneck must do all its work
        assert sim <= B * sum(stages) + 1e-9  # never worse than full serial

    def test_split_backward_can_beat_eqn4(self):
        """Interleaving fwd/bwd lets the pipeline fill Eqn 4's drain bubble."""
        stages = [2.0, 1.0]
        wb = whitebox_latency(stages, 2)
        sim = simulated_latency(stages, 2, split_backward=True)
        assert sim < wb

    def test_transfer_time_increases_makespan(self):
        stages = [1.0, 1.0]
        free = simulated_latency(stages, 4)
        slow = simulated_latency(stages, 4, transfer_bytes=1e9, link=TEN_GBE)
        assert slow > free

    def test_nvlink_transfer_negligible(self):
        """§V's justification for ignoring inter-stage communication."""
        stages = [0.5, 0.5, 0.5]
        free = simulated_latency(stages, 8)
        nv = simulated_latency(stages, 8, transfer_bytes=32e6, link=NVLINK)
        assert (nv - free) / free < 0.02

    def test_all_events_recorded(self):
        assert len(PipelineSimulator([1.0, 1.0], 3).run().events) == 2 * 3
        assert len(PipelineSimulator([1.0, 1.0], 3,
                                     split_backward=True).run().events) == 2 * 3 * 2

    def test_events_respect_dependencies(self):
        sched = PipelineSimulator([1.0, 2.0, 1.5], 4).run()
        end = {(e.stage, e.microbatch): e.time for e in sched.events}
        for (s, m), t in end.items():
            if s > 0:
                assert end[(s - 1, m)] <= t + 1e-12

    def test_utilization_of_bottleneck_higher(self):
        stages = [1.0, 3.0]
        sched = PipelineSimulator(stages, 8).run()
        u0 = sched.stage_utilization(0, stages[0] / 8)
        u1 = sched.stage_utilization(1, stages[1] / 8)
        assert u1 > 0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            PipelineSimulator([], 4)
        with pytest.raises(ValueError):
            PipelineSimulator([1.0], 0)


class TestGrayBoxComposition:
    def test_whitebox_over_profiled_stages(self, tiny_gpt_profiler, mesh2):
        t1 = tiny_gpt_profiler.profile_stage(0, 2, mesh2, 2, 1).latency
        t2 = tiny_gpt_profiler.profile_stage(2, 4, mesh2, 2, 1).latency
        T = whitebox_latency([t1, t2], 8)
        assert T > 7 * max(t1, t2)
