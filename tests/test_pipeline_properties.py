"""Property tests for the 1F1B discrete-event simulator vs Eqn 4.

The white-box closed form ``T = Σ t_i + (B-1)·max_j t_j`` (Eqn 4) is the
paper's inter-stage model.  Invariants the simulator must hold:

* **uniform stages** — the simulated makespan equals Eqn 4 *exactly*
  (every stage identical, the flow shop has no slack anywhere);
* **perturbed stages** — whatever the per-stage times, the combined-pass
  simulation never undercuts Eqn 4 (it is the flow-shop identity with
  free transfers, and transfers only add);
* **work envelopes** — any schedule, including split fwd/bwd 1F1B, is
  bounded below by the bottleneck stage's busy time ``B·max t`` and the
  one-microbatch critical path ``Σ t``;
* **monotonicity** — slowing any stage never speeds up the pipeline.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import NVLINK, TEN_GBE
from repro.runtime import simulated_latency, whitebox_latency

stage_lists = st.lists(st.floats(0.01, 5.0), min_size=1, max_size=8)
micro = st.integers(1, 16)


class TestUniformStages:
    @given(t=st.floats(0.01, 5.0), S=st.integers(1, 8), B=micro)
    @settings(max_examples=60, deadline=None)
    def test_simulator_equals_eqn4_exactly(self, t, S, B):
        stages = [t] * S
        assert simulated_latency(stages, B) == \
            pytest.approx(whitebox_latency(stages, B), rel=1e-12)

    @given(t=st.floats(0.01, 5.0), S=st.integers(1, 8), B=micro)
    @settings(max_examples=30, deadline=None)
    def test_uniform_closed_form_value(self, t, S, B):
        # Eqn 4 on uniform stages reduces to (S + B - 1) · t
        assert simulated_latency([t] * S, B) == \
            pytest.approx((S + B - 1) * t, rel=1e-12)


class TestPerturbedStages:
    @given(stages=stage_lists, B=micro, seed=st.integers(0, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_never_undercuts_eqn4(self, stages, B, seed):
        """Perturbing stages off-uniform must keep sim >= the Eqn 4 bound."""
        wb = whitebox_latency(stages, B)
        sim = simulated_latency(stages, B)
        assert sim >= wb * (1 - 1e-12)

    @given(stages=stage_lists, B=micro)
    @settings(max_examples=30, deadline=None)
    def test_transfers_only_add(self, stages, B):
        free = simulated_latency(stages, B)
        for link in (NVLINK, TEN_GBE):
            slow = simulated_latency(stages, B, transfer_bytes=64e6, link=link)
            assert slow >= free - 1e-12
            assert slow >= whitebox_latency(stages, B) * (1 - 1e-12)

    @given(stages=stage_lists, B=micro,
           idx_frac=st.floats(0.0, 0.999), bump=st.floats(0.01, 2.0))
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_stage_times(self, stages, B, idx_frac, bump):
        """Slowing one stage never shortens the schedule."""
        base = simulated_latency(stages, B)
        slower = list(stages)
        slower[int(idx_frac * len(stages))] += bump
        assert simulated_latency(slower, B) >= base - 1e-12


class TestWorkEnvelopes:
    @given(stages=stage_lists, B=micro)
    @settings(max_examples=40, deadline=None)
    def test_split_1f1b_bounded_below_by_work_and_critical_path(
            self, stages, B):
        """Fwd/bwd interleaving may beat Eqn 4, but no schedule can beat
        the bottleneck's total work or the single-microbatch path."""
        sim = simulated_latency(stages, B, split_backward=True)
        assert sim >= B * max(stages) * (1 - 1e-12)
        assert sim >= sum(stages) * (1 - 1e-12)

    @given(stages=stage_lists, B=micro)
    @settings(max_examples=40, deadline=None)
    def test_combined_pass_equals_flow_shop_identity(self, stages, B):
        """With identical jobs and free transfers the FIFO flow shop has a
        closed-form makespan: exactly Eqn 4, uniform or not."""
        assert simulated_latency(stages, B) == \
            pytest.approx(whitebox_latency(stages, B), rel=1e-9)
