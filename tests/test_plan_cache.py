"""Intra-op plan cache: canonical hashing and memoized DP equivalence."""

from __future__ import annotations

import pytest

from repro.cluster import NVLINK, RTX_A5500, TEN_GBE, DeviceMesh
from repro.ir import GraphBuilder
from repro.ir.serialize import canonical_graph_dict, canonical_hash
from repro.parallel.intra_op import optimize_stage
from repro.parallel.plan_cache import (
    PlanCache,
    cached_optimize_stage,
    global_plan_cache,
)
from repro.runtime.executor import execute_plan


def _mlp(name: str, node_prefix: str = "") -> "GraphBuilder":
    b = GraphBuilder(name)
    x = b.input(f"{node_prefix}x", (4, 8))
    w = b.param(f"{node_prefix}w", (8, 16))
    b.output(b.relu(b.matmul(x, w)), f"{node_prefix}out")
    return b.build()


@pytest.fixture
def mesh():
    return DeviceMesh(1, 2, RTX_A5500, NVLINK, TEN_GBE).logical(2, 1)


class TestCanonicalHash:
    def test_names_do_not_matter(self):
        """Twin slices differ only in labels — they must hash identically."""
        a, b = _mlp("layers[2:5]", "a_"), _mlp("layers[3:6]", "b_")
        assert canonical_hash(a) == canonical_hash(b)

    def test_structure_matters(self):
        a = _mlp("a")
        c = GraphBuilder("c")
        x = c.input("x", (4, 8))
        w = c.param("w", (8, 16))
        c.output(c.gelu(c.matmul(x, w)), "out")
        assert canonical_hash(a) != canonical_hash(c.build())

    def test_shapes_matter(self):
        b = GraphBuilder("d")
        x = b.input("x", (4, 16))
        w = b.param("w", (16, 16))
        b.output(b.relu(b.matmul(x, w)), "out")
        assert canonical_hash(_mlp("a")) != canonical_hash(b.build())

    def test_dict_is_name_free(self):
        d = canonical_graph_dict(_mlp("secret", "hidden_"))
        import json
        text = json.dumps(d)
        assert "secret" not in text and "hidden_" not in text

    def test_stable_across_calls(self):
        g = _mlp("a")
        assert canonical_hash(g) == canonical_hash(g)


class TestPlanCache:
    def test_hit_reproduces_the_dp_exactly(self, mesh):
        """A cached twin must get the same assignments, estimate, and —
        because the executor keys noise on the *caller's* graph — the same
        authoritative latency the DP would have produced for it."""
        twin_a, twin_b = _mlp("s[2:5]"), _mlp("s[3:6]")
        cache = PlanCache()
        pa = cache.optimize(twin_a, mesh)
        pb = cache.optimize(twin_b, mesh)
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        direct = optimize_stage(twin_b, mesh)
        assert pb.estimated_time == direct.estimated_time
        assert [a.strategy for a in pb.assignments] == \
            [a.strategy for a in direct.assignments]
        assert pb.graph is twin_b  # rebound to the caller's graph
        assert execute_plan(pb).latency == execute_plan(direct).latency
        assert pa.estimated_time == pb.estimated_time

    def test_mesh_key_separates_entries(self, mesh):
        other = DeviceMesh(1, 2, RTX_A5500, NVLINK, TEN_GBE).logical(1, 2)
        cache = PlanCache()
        cache.optimize(_mlp("a"), mesh)
        cache.optimize(_mlp("a"), other)
        assert cache.stats.misses == 2 and len(cache) == 2

    def test_clear_resets(self, mesh):
        cache = PlanCache()
        cache.optimize(_mlp("a"), mesh)
        cache.clear()
        assert len(cache) == 0 and cache.stats.misses == 0

    def test_env_gate_bypasses_cache(self, mesh, monkeypatch):
        import repro.parallel.plan_cache as pc
        monkeypatch.setattr(pc, "_GLOBAL", None)
        monkeypatch.setenv("REPRO_PLAN_CACHE", "off")
        cached_optimize_stage(_mlp("a"), mesh)
        assert len(global_plan_cache()) == 0
        monkeypatch.delenv("REPRO_PLAN_CACHE")
        cached_optimize_stage(_mlp("a"), mesh)
        assert len(global_plan_cache()) == 1

    def test_twin_slices_of_real_model_share_one_solve(
            self, tiny_gpt_profiler, mesh2):
        """Interior single-block GPT slices are structural twins: profiling
        [1:2) and [2:3) must cost one DP solve, not two."""
        import repro.parallel.plan_cache as pc
        cache = pc.global_plan_cache()
        before_len = len(cache)
        h0, m0 = cache.stats.hits, cache.stats.misses
        tg_a = tiny_gpt_profiler.training_graph(1, 2)
        tg_b = tiny_gpt_profiler.training_graph(2, 3)
        assert canonical_hash(tg_a) == canonical_hash(tg_b)
        logical = mesh2.logical(2, 1)
        pa = cache.optimize(tg_a, logical)
        pb = cache.optimize(tg_b, logical)
        assert cache.stats.misses - m0 <= 1
        assert cache.stats.hits - h0 >= 1
        assert pa.estimated_time == pb.estimated_time
        assert len(cache) - before_len <= 1
