"""Predictor persistence and the analytical baseline."""

import numpy as np
import pytest

from repro.predictors import (
    AnalyticalPredictor,
    LatencyPredictor,
    TrainConfig,
    analytical_estimate,
    load_predictor,
    save_predictor,
    split_dataset,
)


@pytest.fixture(scope="module")
def fitted(tiny_corpus):
    sp = split_dataset(tiny_corpus, 0.6, 0.15, seed=0)
    lp = LatencyPredictor("gcn", seed=0)
    lp.fit(sp.train, sp.val, TrainConfig(epochs=8, patience=8, batch_size=8))
    return lp, sp


class TestSerialize:
    def test_roundtrip_predictions_identical(self, fitted, tmp_path):
        lp, sp = fitted
        path = tmp_path / "pred.npz"
        save_predictor(lp, path)
        lp2 = load_predictor(path)
        assert lp2.kind == lp.kind
        a = lp.predict_samples(sp.test)
        b = lp2.predict_samples(sp.test)
        assert np.allclose(a, b, rtol=1e-6)

    def test_normalizer_restored(self, fitted, tmp_path):
        lp, _ = fitted
        path = tmp_path / "pred.npz"
        save_predictor(lp, path)
        lp2 = load_predictor(path)
        assert lp2.normalizer.target_transform == lp.normalizer.target_transform
        assert lp2.normalizer.target_scale == pytest.approx(
            lp.normalizer.target_scale)
        assert np.allclose(lp2.normalizer.feat_mean, lp.normalizer.feat_mean)

    def test_unfitted_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_predictor(LatencyPredictor("gcn"), tmp_path / "x.npz")

    def test_garbage_file_rejected(self, tmp_path):
        p = tmp_path / "junk.npz"
        np.savez(p, a=np.zeros(3))
        with pytest.raises(ValueError):
            load_predictor(p)

    def test_transformer_roundtrip(self, tiny_corpus, tmp_path):
        sp = split_dataset(tiny_corpus, 0.6, 0.15, seed=0)
        lp = LatencyPredictor("dag_transformer", seed=0)
        lp.fit(sp.train, sp.val,
               TrainConfig(epochs=3, patience=3, batch_size=8))
        save_predictor(lp, tmp_path / "t.npz")
        lp2 = load_predictor(tmp_path / "t.npz")
        assert np.allclose(lp.predict_samples(sp.test),
                           lp2.predict_samples(sp.test), rtol=1e-6)


class TestAnalyticalBaseline:
    def test_estimate_positive_and_monotone(self, tiny_gpt_profiler):
        from repro.cluster import RTX_A5500

        g1 = tiny_gpt_profiler.predictor_graph(1, 2)
        g2 = tiny_gpt_profiler.predictor_graph(1, 3)
        e1 = analytical_estimate(g1, RTX_A5500)
        e2 = analytical_estimate(g2, RTX_A5500)
        assert 0 < e1 < e2

    def test_calibration_improves_fit(self, tiny_corpus):
        sp = split_dataset(tiny_corpus, 0.6, 0.15, seed=0)
        ap = AnalyticalPredictor()
        ap.fit(sp.train, sp.val)
        assert ap.fitted
        assert ap.evaluate_mre(sp.test) < 200.0

    def test_requires_fit(self, tiny_corpus):
        with pytest.raises(RuntimeError):
            AnalyticalPredictor().predict_samples(tiny_corpus[:1])

    def test_scale_least_squares(self, tiny_corpus):
        """Doubling the targets doubles the calibrated scale."""
        from dataclasses import replace
        from repro.predictors import StageSample

        sp = split_dataset(tiny_corpus, 0.6, 0.15, seed=0)
        ap1 = AnalyticalPredictor()
        ap1.fit(sp.train, sp.val)
        doubled = [StageSample(s.graph, 2 * s.latency) for s in sp.train]
        doubled_val = [StageSample(s.graph, 2 * s.latency) for s in sp.val]
        ap2 = AnalyticalPredictor()
        ap2.fit(doubled, doubled_val)
        assert ap2.scale == pytest.approx(2 * ap1.scale, rel=1e-6)
