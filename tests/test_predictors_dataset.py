"""Dataset encoding, normalization, splitting, batching."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predictors import (
    Normalizer,
    StageSample,
    make_batches,
    split_dataset,
)


class TestEncoding:
    def test_encode_idempotent(self, tiny_corpus):
        s = tiny_corpus[0]
        s.encode()
        f1 = s.features
        s.encode()
        assert s.features is f1

    def test_shapes_consistent(self, tiny_corpus):
        for s in tiny_corpus[:5]:
            s.encode()
            n = s.n_nodes
            assert s.features.shape[0] == n
            assert s.reach.shape == (n, n)
            assert s.adj.shape == (n, n)
            assert s.depths.shape == (n,)


class TestNormalizer:
    def test_fit_standardizes_features(self, tiny_corpus):
        norm = Normalizer.fit(tiny_corpus)
        stacked = np.concatenate(
            [norm.features(s) for s in tiny_corpus], axis=0)
        # non-constant columns are ~standardized
        stds = stacked.std(axis=0)
        assert stds.max() < 5.0

    def test_scaled_target_roundtrip(self, tiny_corpus):
        norm = Normalizer.fit(tiny_corpus, "scaled")
        y = np.array([0.01, 0.5, 2.0])
        assert np.allclose(norm.inverse(norm.target(y)), y, rtol=1e-5)

    def test_log_target_roundtrip(self, tiny_corpus):
        norm = Normalizer.fit(tiny_corpus, "log")
        y = np.array([0.01, 0.5, 2.0], np.float32)
        assert np.allclose(norm.inverse(norm.target(y)), y, rtol=1e-4)

    def test_standard_target_roundtrip(self, tiny_corpus):
        norm = Normalizer.fit(tiny_corpus, "standard")
        y = np.array([0.01, 0.5, 2.0], np.float32)
        assert np.allclose(norm.inverse(norm.target(y)), y, rtol=1e-4)

    def test_scaled_mean_is_one(self, tiny_corpus):
        norm = Normalizer.fit(tiny_corpus, "scaled")
        lats = np.array([s.latency for s in tiny_corpus])
        assert norm.target(lats).mean() == pytest.approx(1.0, rel=1e-5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Normalizer.fit([])


class TestSplit:
    def test_fractions_respected(self, tiny_corpus):
        sp = split_dataset(tiny_corpus, 0.5, 0.1, seed=0)
        n = len(tiny_corpus)
        assert len(sp.train) == round(0.5 * n)
        assert len(sp.val) >= 1
        assert len(sp.train) + len(sp.val) + len(sp.test) == n

    def test_splits_disjoint(self, tiny_corpus):
        sp = split_dataset(tiny_corpus, 0.6, 0.1, seed=1)
        ids = lambda xs: {id(x) for x in xs}
        assert not (ids(sp.train) & ids(sp.val))
        assert not (ids(sp.train) & ids(sp.test))

    def test_seed_determinism(self, tiny_corpus):
        a = split_dataset(tiny_corpus, 0.5, 0.1, seed=3)
        b = split_dataset(tiny_corpus, 0.5, 0.1, seed=3)
        assert [s.stage_id for s in a.train] == [s.stage_id for s in b.train]

    def test_invalid_fractions(self, tiny_corpus):
        with pytest.raises(ValueError):
            split_dataset(tiny_corpus, 0.0)
        with pytest.raises(ValueError):
            split_dataset(tiny_corpus, 0.95, 0.1)


class TestBatching:
    def test_all_samples_covered(self, tiny_corpus):
        norm = Normalizer.fit(tiny_corpus)
        batches = make_batches(tiny_corpus, norm, 4)
        assert sum(b.size for b in batches) == len(tiny_corpus)

    def test_bucketing_limits_padding(self, tiny_corpus):
        norm = Normalizer.fit(tiny_corpus)
        bucketed = make_batches(tiny_corpus, norm, 4, bucket=True)
        plain = make_batches(tiny_corpus, norm, 4, bucket=False)
        pad = lambda bs: sum(b.features.shape[1] * b.size for b in bs)
        assert pad(bucketed) <= pad(plain)

    def test_padding_masked(self, tiny_corpus):
        norm = Normalizer.fit(tiny_corpus)
        for b in make_batches(tiny_corpus, norm, 4):
            counts = b.node_mask.sum(axis=1).astype(int)
            for j, s_nodes in enumerate(counts):
                assert np.all(b.features[j, s_nodes:] == 0)

    def test_padding_rows_attend_to_self(self, tiny_corpus):
        norm = Normalizer.fit(tiny_corpus)
        for b in make_batches(tiny_corpus, norm, 4):
            assert b.reach[:, np.arange(b.reach.shape[1]),
                           np.arange(b.reach.shape[1])].all()

    def test_sparse_adjacency_matches_dense(self, tiny_corpus):
        norm = Normalizer.fit(tiny_corpus)
        b = make_batches(tiny_corpus, norm, 4)[0]
        B, N, _ = b.features.shape
        dense = np.zeros((B * N, B * N), np.float32)
        for j in range(B):
            dense[j * N:(j + 1) * N, j * N:(j + 1) * N] = b.adj[j]
        assert np.allclose(b.adj_sparse.toarray(), dense)

    def test_sparse_adjacency_equals_scipy_block_diag(self, tiny_corpus):
        """The O(nnz) direct CSR assembly is exactly scipy's block_diag of
        the dense padded blocks — same values, structure, and dtype."""
        import scipy.sparse as sp

        norm = Normalizer.fit(tiny_corpus)
        for b in make_batches(tiny_corpus, norm, 4):
            B = b.size
            expect = sp.block_diag(
                [sp.csr_matrix(b.adj[j]) for j in range(B)], format="csr")
            assert b.adj_sparse.shape == expect.shape
            assert b.adj_sparse.dtype == expect.dtype
            assert (b.adj_sparse != expect).nnz == 0

    def test_sample_csr_cached(self, tiny_corpus):
        s = tiny_corpus[0]
        c1 = s.sparse_adj()
        assert s.sparse_adj() is c1
        assert np.allclose(c1.toarray(), s.encode().adj)

    def test_invalid_batch_size(self, tiny_corpus):
        norm = Normalizer.fit(tiny_corpus)
        with pytest.raises(ValueError):
            make_batches(tiny_corpus, norm, 0)


class TestBatchInvariants:
    def test_bucket_false_preserves_order(self, tiny_corpus):
        norm = Normalizer.fit(tiny_corpus)
        batches = make_batches(tiny_corpus, norm, 3, bucket=False)
        flat = np.concatenate([b.latencies for b in batches])
        assert np.array_equal(
            flat, np.array([s.latency for s in tiny_corpus], np.float32))

    def test_attn_bias_matches_where_exactly(self, tiny_corpus):
        """The precomputed additive mask must be *bit-identical* to the
        np.where the attention layers used to build per forward."""
        norm = Normalizer.fit(tiny_corpus)
        for b in make_batches(tiny_corpus, norm, 4):
            expect = np.where(b.reach[:, None, :, :], np.float32(0.0),
                              np.float32(-1e9))
            assert b.attn_bias.dtype == np.float32
            assert b.attn_bias.shape == (b.size, 1) + b.reach.shape[1:]
            assert np.array_equal(b.attn_bias, expect)

    def test_attn_bias_covers_padding_self_loops(self, tiny_corpus):
        """Padding rows attend to themselves (bias 0 on the diagonal), so
        their softmax rows stay finite."""
        norm = Normalizer.fit(tiny_corpus)
        for b in make_batches(tiny_corpus, norm, 4):
            n = b.reach.shape[1]
            diag = b.attn_bias[:, 0, np.arange(n), np.arange(n)]
            assert np.all(diag == 0.0)

    def test_ablation_bias_lazy_and_exact(self, tiny_corpus):
        norm = Normalizer.fit(tiny_corpus)
        b = make_batches(tiny_corpus, norm, 4)[0]
        assert b._ablation_bias is None  # built on demand only
        bias = b.ablation_bias()
        assert b.ablation_bias() is bias  # cached per batch
        n = b.node_mask.shape[1]
        full = (b.node_mask[:, None, :] > 0) | np.eye(n, dtype=bool)[None]
        expect = np.where(full[:, None, :, :], np.float32(0.0),
                          np.float32(-1e9))
        assert np.array_equal(bias, expect)

    def test_cached_and_fresh_batches_identical(self, tiny_corpus,
                                                monkeypatch):
        """Batches built through the shared encoding cache must equal the
        cache-off construction bit-for-bit, array by array."""
        def build():
            samples = [StageSample(s.graph, s.latency, s.stage_id)
                       for s in tiny_corpus]
            norm = Normalizer.fit(samples)
            return make_batches(samples, norm, 4)

        cached = build()
        monkeypatch.setenv("REPRO_ENCODING_CACHE", "off")
        fresh = build()
        assert len(cached) == len(fresh)
        for bc, bf in zip(cached, fresh):
            for name in ("features", "node_mask", "reach", "adj", "depths",
                         "targets", "latencies", "attn_bias"):
                assert np.array_equal(getattr(bc, name), getattr(bf, name)), name
            assert np.array_equal(bc.adj_sparse.toarray(),
                                  bf.adj_sparse.toarray())
