"""Predictor architectures: DAG Transformer, GCN, GAT."""

import numpy as np
import pytest

from repro.ir.features import FEATURE_DIM
from repro.predictors import (
    DAGTransformerModel,
    GATModel,
    GCNModel,
    Normalizer,
    build_model,
    make_batches,
)
from repro.predictors.dag_transformer import sinusoidal_table


@pytest.fixture(scope="module")
def batch(tiny_corpus):
    norm = Normalizer.fit(tiny_corpus)
    return make_batches(tiny_corpus[:6], norm, 6)[0]


class TestDAGTransformer:
    def test_paper_hyperparameters(self):
        m = DAGTransformerModel(FEATURE_DIM)
        assert len(m.layers) == 4  # 4 DAG Transformer layers (§IV-B6)
        assert m.embed.w.shape == (FEATURE_DIM, 64)  # embedding dim 64

    def test_output_shape(self, batch):
        m = DAGTransformerModel(FEATURE_DIM, seed=0)
        out = m(batch)
        assert out.shape == (batch.size,)
        assert np.isfinite(out.data).all()

    def test_deterministic_per_seed(self, batch):
        a = DAGTransformerModel(FEATURE_DIM, seed=1)(batch).data
        b = DAGTransformerModel(FEATURE_DIM, seed=1)(batch).data
        c = DAGTransformerModel(FEATURE_DIM, seed=2)(batch).data
        assert np.allclose(a, b)
        assert not np.allclose(a, c)

    def test_dagra_mask_matters(self, batch):
        m1 = DAGTransformerModel(FEATURE_DIM, seed=0, use_dagra=True)
        m2 = DAGTransformerModel(FEATURE_DIM, seed=0, use_dagra=False)
        assert not np.allclose(m1(batch).data, m2(batch).data)

    def test_dagpe_matters(self, batch):
        m1 = DAGTransformerModel(FEATURE_DIM, seed=0, use_dagpe=True)
        m2 = DAGTransformerModel(FEATURE_DIM, seed=0, use_dagpe=False)
        assert not np.allclose(m1(batch).data, m2(batch).data)

    def test_sinusoidal_table(self):
        t = sinusoidal_table(128, 64)
        assert t.shape == (128, 64)
        assert np.abs(t).max() <= 1.0 + 1e-6
        # distinct depths get distinct encodings
        assert not np.allclose(t[0], t[1])

    def test_padding_invariance(self, tiny_corpus):
        """Predictions must not depend on batch padding width."""
        norm = Normalizer.fit(tiny_corpus)
        m = DAGTransformerModel(FEATURE_DIM, seed=0)
        small = sorted(tiny_corpus, key=lambda s: s.encode().n_nodes)[0]
        alone = make_batches([small], norm, 1)[0]
        big = sorted(tiny_corpus, key=lambda s: s.encode().n_nodes)[-1]
        padded = make_batches([small, big], norm, 2)[0]
        # identify the small sample's row in the padded batch
        row = int(np.argmin(padded.node_mask.sum(axis=1)))
        assert m(alone).data[0] == pytest.approx(
            float(m(padded).data[row]), rel=1e-4)


class TestBaselines:
    def test_gcn_paper_hyperparameters(self):
        m = GCNModel(FEATURE_DIM)
        assert len(m.lins) == 6  # 6 GCN layers of width 256 (§VII-D)
        assert m.lins[1].w.shape == (256, 256)

    def test_gat_paper_hyperparameters(self):
        m = GATModel(FEATURE_DIM)
        assert len(m.convs) == 6  # 6 GAT layers, hidden dim 32 (§VII-D)
        assert m.convs[1].lin.w.shape == (32, 32)

    def test_gcn_output(self, batch):
        out = GCNModel(FEATURE_DIM, seed=0)(batch)
        assert out.shape == (batch.size,)
        assert np.isfinite(out.data).all()

    def test_gat_output(self, batch):
        out = GATModel(FEATURE_DIM, seed=0)(batch)
        assert out.shape == (batch.size,)
        assert np.isfinite(out.data).all()

    def test_build_model_dispatch(self):
        assert isinstance(build_model("dag_transformer"), DAGTransformerModel)
        assert isinstance(build_model("gcn"), GCNModel)
        assert isinstance(build_model("gat"), GATModel)
        with pytest.raises(ValueError):
            build_model("mlp")

    def test_gradients_flow_through_all_models(self, batch):
        from repro.nn.functional import mae

        for kind in ("dag_transformer", "gcn", "gat"):
            m = build_model(kind, seed=0)
            loss = mae(m(batch), batch.targets)
            m.zero_grad()
            loss.backward()
            grads = [p.grad for p in m.parameters()]
            n_with_grad = sum(g is not None and np.abs(g).sum() > 0
                              for g in grads)
            assert n_with_grad > len(grads) * 0.8, kind
