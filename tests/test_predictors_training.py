"""Training loop, early stopping, the LatencyPredictor facade, metrics."""

import numpy as np
import pytest

from repro.predictors import (
    LatencyPredictor,
    Normalizer,
    TrainConfig,
    mean_absolute_error,
    mre,
    rmse,
    split_dataset,
    train_model,
)
from repro.predictors.base import build_model
from repro.ir.features import FEATURE_DIM


@pytest.fixture(scope="module")
def splits(tiny_corpus):
    return split_dataset(tiny_corpus, 0.6, 0.15, seed=0)


class TestMetrics:
    def test_mre_definition(self):
        # Eqn 5: mean |(pred - true)/true| * 100
        assert mre(np.array([1.1, 0.9]), np.array([1.0, 1.0])) == pytest.approx(10.0)

    def test_mre_shape_check(self):
        with pytest.raises(ValueError):
            mre(np.ones(3), np.ones(4))

    def test_mre_negative_truth_rejected(self):
        with pytest.raises(ValueError):
            mre(np.ones(2), np.array([1.0, -0.5]))

    def test_mre_near_zero_truth_guarded(self):
        # a degenerate ~zero measurement must not turn the cell into inf:
        # the denominator is floored at EPS_LATENCY
        from repro.predictors.metrics import EPS_LATENCY

        value = mre(np.array([1.0, 2.0]), np.array([1.0, 0.0]))
        assert np.isfinite(value)
        assert value == pytest.approx(
            100.0 * 0.5 * (0.0 + 2.0 / EPS_LATENCY))

    def test_empty_inputs_rejected(self):
        for fn in (mre, mean_absolute_error, rmse):
            with pytest.raises(ValueError):
                fn(np.array([]), np.array([]))

    def test_mae_rmse(self):
        p, t = np.array([2.0, 0.0]), np.array([0.0, 0.0])
        assert mean_absolute_error(p, t) == pytest.approx(1.0)
        assert rmse(p, t) == pytest.approx(np.sqrt(2.0))


class TestTrainer:
    def test_loss_decreases(self, splits):
        norm = Normalizer.fit(splits.train)
        m = build_model("gcn", seed=0)
        res = train_model(m, splits.train, splits.val, norm,
                          TrainConfig(epochs=15, patience=15, batch_size=8))
        assert res.train_loss[-1] < res.train_loss[0]
        assert res.epochs_run == 15

    def test_early_stopping_stops_and_restores(self, splits):
        norm = Normalizer.fit(splits.train)
        m = build_model("gcn", seed=0)
        res = train_model(m, splits.train, splits.val, norm,
                          TrainConfig(epochs=400, patience=5, batch_size=8))
        if res.stopped_early:
            assert res.epochs_run < 400
            assert res.epochs_run - res.best_epoch >= 5
        # restored weights reproduce the best validation loss
        from repro.predictors import evaluate_loss, make_batches

        val_batches = make_batches(splits.val, norm, 8)
        assert evaluate_loss(m, val_batches, "mae") == pytest.approx(
            min(res.val_loss), rel=1e-5)

    def test_mse_loss_supported(self, splits):
        norm = Normalizer.fit(splits.train)
        m = build_model("gcn", seed=0)
        res = train_model(m, splits.train, splits.val, norm,
                          TrainConfig(epochs=3, patience=3, loss="mse",
                                      batch_size=8))
        assert len(res.train_loss) == 3

    def test_unknown_loss(self, splits):
        norm = Normalizer.fit(splits.train)
        m = build_model("gcn", seed=0)
        with pytest.raises(ValueError):
            train_model(m, splits.train, splits.val, norm,
                        TrainConfig(loss="huber"))

    def test_seed_reproducibility(self, splits):
        norm = Normalizer.fit(splits.train)
        cfg = TrainConfig(epochs=4, patience=4, batch_size=8, seed=7)
        m1 = build_model("gcn", seed=7)
        r1 = train_model(m1, splits.train, splits.val, norm, cfg)
        m2 = build_model("gcn", seed=7)
        r2 = train_model(m2, splits.train, splits.val, norm, cfg)
        assert r1.train_loss == pytest.approx(r2.train_loss, rel=1e-6)


class TestFacade:
    def test_fit_predict_roundtrip(self, splits):
        lp = LatencyPredictor("gcn", seed=0)
        lp.fit(splits.train, splits.val,
               TrainConfig(epochs=20, patience=20, batch_size=8))
        pred = lp.predict_samples(splits.test)
        assert pred.shape == (len(splits.test),)
        assert np.isfinite(pred).all()

    def test_prediction_order_matches_input(self, splits):
        """Bucket-sorted batching must not permute the returned array."""
        lp = LatencyPredictor("gcn", seed=0)
        lp.fit(splits.train, splits.val,
               TrainConfig(epochs=5, patience=5, batch_size=4))
        samples = splits.test + splits.val  # deliberately size-unsorted
        joint = lp.predict_samples(samples)
        for i, s in enumerate(samples):
            alone = lp.predict_samples([s])[0]
            assert joint[i] == pytest.approx(alone, rel=1e-4)

    def test_predict_before_fit_raises(self, splits):
        with pytest.raises(RuntimeError):
            LatencyPredictor("gcn").predict_samples(splits.test)

    def test_evaluate_mre_consistent(self, splits):
        lp = LatencyPredictor("gcn", seed=0)
        lp.fit(splits.train, splits.val,
               TrainConfig(epochs=10, patience=10, batch_size=8))
        m = lp.evaluate_mre(splits.test)
        pred = lp.predict_samples(splits.test)
        true = np.array([s.latency for s in splits.test])
        assert m == pytest.approx(mre(pred, true))

    def test_predict_graphs(self, splits, tiny_gpt_profiler):
        lp = LatencyPredictor("gcn", seed=0)
        lp.fit(splits.train, splits.val,
               TrainConfig(epochs=5, patience=5, batch_size=8))
        graphs = [tiny_gpt_profiler.predictor_graph(1, 2)]
        pred = lp.predict_graphs(graphs)
        assert pred.shape == (1,) and np.isfinite(pred).all()

    def test_learns_better_than_mean_baseline(self, splits):
        """A trained predictor must beat predicting the train mean."""
        lp = LatencyPredictor("gcn", seed=0)
        lp.fit(splits.train, splits.val,
               TrainConfig(epochs=150, patience=150, batch_size=8, lr=2e-3))
        mean_lat = np.mean([s.latency for s in splits.train])
        true = np.array([s.latency for s in splits.train])
        baseline = mre(np.full_like(true, mean_lat), true)
        # the corpus here is tiny (6 train samples); require in-sample
        # learning to beat the constant predictor decisively
        assert lp.evaluate_mre(splits.train) < baseline
