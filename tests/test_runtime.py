"""Runtime: op cost model, executor, noise, profiler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import A40, PLATFORM2
from repro.ir import GraphBuilder, build_training_graph
from repro.parallel import optimize_stage
from repro.runtime import (
    NOISE_SIGMA,
    StageProfiler,
    execute_plan,
    graph_bytes,
    graph_flops,
    measurement_factor,
    op_time,
    profiling_cost,
    stable_seed,
)


def _matmul_graph(m, k, n):
    b = GraphBuilder("g")
    x = b.input("x", (m, k))
    w = b.param("w", (k, n))
    b.output(b.matmul(x, w))
    return b.build()


class TestOpCost:
    def test_launch_overhead_floor(self):
        g = _matmul_graph(2, 2, 2)
        node = next(n for n in g.operators())
        ins = [g.nodes[i].out for i in node.inputs]
        t = op_time(node, ins, A40)
        assert t >= A40.launch_overhead

    def test_large_matmul_compute_bound(self):
        g = _matmul_graph(4096, 4096, 4096)
        node = next(n for n in g.operators())
        ins = [g.nodes[i].out for i in node.inputs]
        t = op_time(node, ins, A40)
        ideal = 2 * 4096**3 / A40.peak_flops
        assert ideal < t < 5 * ideal

    def test_sharding_divides_work(self):
        g = _matmul_graph(4096, 4096, 4096)
        node = next(n for n in g.operators())
        ins = [g.nodes[i].out for i in node.inputs]
        t1 = op_time(node, ins, A40, 1.0)
        t4 = op_time(node, ins, A40, 4.0)
        assert t4 < t1
        assert t4 > t1 / 4  # overheads do not shard

    def test_invalid_shard_factor(self):
        g = _matmul_graph(8, 8, 8)
        node = next(n for n in g.operators())
        with pytest.raises(ValueError):
            op_time(node, [g.nodes[i].out for i in node.inputs], A40, 0.5)

    def test_graph_flops_scale_with_batch(self, tiny_gpt):
        f1 = graph_flops(tiny_gpt.stage_graph(1, 2, microbatch=2))
        f2 = graph_flops(tiny_gpt.stage_graph(1, 2, microbatch=4))
        assert f2 == pytest.approx(2 * f1, rel=0.05)

    def test_graph_bytes_positive(self, toy_graph):
        assert graph_bytes(toy_graph) > 0


class TestNoise:
    def test_deterministic(self):
        assert measurement_factor("a", "b") == measurement_factor("a", "b")

    def test_identity_sensitivity(self):
        assert measurement_factor("a", "b") != measurement_factor("a", "c")

    def test_magnitude_bounded(self):
        vals = [measurement_factor("stage", i) for i in range(500)]
        arr = np.array(vals)
        assert 0.9 < arr.mean() < 1.1
        assert abs(np.log(arr).std() - NOISE_SIGMA) < 0.005

    def test_stable_seed_is_64bit(self):
        s = stable_seed("x", 1, 2.5)
        assert 0 <= s < 2**64


class TestExecutor:
    def _profile(self, mesh, dp, mp, noise=True):
        g = build_training_graph(_matmul_graph(256, 512, 256))
        plan = optimize_stage(g, mesh.logical(dp, mp))
        return execute_plan(plan, noise=noise)

    def test_components_sum_consistent(self, mesh2):
        p = self._profile(mesh2, 2, 1, noise=False)
        assert p.latency == pytest.approx(
            p.compute_time + p.comm_time + p.reshard_time)

    def test_noise_multiplies_total(self, mesh2):
        clean = self._profile(mesh2, 2, 1, noise=False)
        noisy = self._profile(mesh2, 2, 1, noise=True)
        ratio = noisy.latency / clean.latency
        assert 0.9 < ratio < 1.1 and ratio != 1.0

    def test_memory_accounts_train_state(self, mesh1):
        p = self._profile(mesh1, 1, 1)
        # 512*256 params * 16 bytes of train state
        assert p.memory_bytes >= 512 * 256 * 16

    def test_comm_fraction_bounded(self, mesh2):
        p = self._profile(mesh2, 1, 2)
        assert 0.0 <= p.comm_fraction < 1.0


class TestProfiler:
    def test_cache_hit_returns_same_object(self, tiny_gpt_profiler, mesh2):
        a = tiny_gpt_profiler.profile_stage(1, 2, mesh2, 2, 1)
        b = tiny_gpt_profiler.profile_stage(1, 2, mesh2, 2, 1)
        assert a is b

    def test_latency_positive_and_noisy_deterministic(
            self, tiny_gpt, mesh2):
        p1 = StageProfiler(tiny_gpt).profile_stage(1, 2, mesh2, 2, 1)
        p2 = StageProfiler(tiny_gpt).profile_stage(1, 2, mesh2, 2, 1)
        assert p1.latency == p2.latency > 0

    def test_profiling_cost_grows_with_graph_and_latency(self):
        assert profiling_cost(1000, 1.0) > profiling_cost(100, 1.0)
        assert profiling_cost(100, 2.0) > profiling_cost(100, 1.0)

    def test_predictor_graph_is_pruned(self, tiny_gpt_profiler):
        g = tiny_gpt_profiler.predictor_graph(1, 2)
        ops = {n.op for n in g.operators()}
        assert "reshape" not in ops
        assert "convert_element_type" not in ops

    def test_traced_graphs_memoized_per_slice(self, tiny_gpt):
        prof = StageProfiler(tiny_gpt)
        assert prof.predictor_graph(1, 2) is prof.predictor_graph(1, 2)
        assert prof.training_graph(1, 2) is prof.training_graph(1, 2)
        # distinct slices / kinds / microbatches get distinct entries
        assert prof.predictor_graph(1, 2) is not prof.predictor_graph(0, 2)
        assert prof.predictor_graph(1, 2) is not prof.training_graph(1, 2)
        assert prof.training_graph(1, 2, microbatch=2) is not \
            prof.training_graph(1, 2)

    def test_optimal_latency_at_least_as_good_as_any_view(
            self, tiny_gpt_profiler, mesh2):
        best, cfg = tiny_gpt_profiler.optimal_latency(1, 3, mesh2)
        for dp, mp in [(2, 1), (1, 2), (1, 1)]:
            if dp * mp != mesh2.num_devices and (dp, mp) != (1, 1):
                continue
        dp2 = tiny_gpt_profiler.profile_stage(1, 3, mesh2, 2, 1)
        mp2 = tiny_gpt_profiler.profile_stage(1, 3, mesh2, 1, 2)
        assert best <= min(dp2.latency, mp2.latency)

    def test_bigger_stage_higher_latency(self, tiny_gpt_profiler, mesh1):
        small = tiny_gpt_profiler.profile_stage(1, 2, mesh1, 1, 1)
        large = tiny_gpt_profiler.profile_stage(1, 3, mesh1, 1, 1)
        assert large.latency > small.latency

    def test_latency_scales_with_microbatch(self, tiny_gpt_profiler, mesh1):
        mb2 = tiny_gpt_profiler.profile_stage(1, 2, mesh1, 1, 1, microbatch=2)
        mb8 = tiny_gpt_profiler.profile_stage(1, 2, mesh1, 1, 1, microbatch=8)
        assert 2.0 < mb8.latency / mb2.latency < 6.0
