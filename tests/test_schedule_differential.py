"""Differential tests: the schedule registry's 1F1B path is bit-identical
to the seed white-box layer.

The registry generalizes the 1F1B-only code, so its default must not
move a single bit:

* ``OneFOneBSchedule.closed_form`` **is** :func:`whitebox_latency`;
* the generic event engine reproduces ``PipelineSimulator``'s combined
  mode exactly (``==``, no tolerance) — both perform the same
  ``max(ready, free) + t`` float operations;
* ``slice_stages(schedule=None)`` and
  ``slice_stages(schedule=get_schedule("1f1b"))`` return the same plan
  with the same float latency.

Stage vectors come from synthetic seeded draws *and* from the profiled
fast-profile GPT grid (every platform-2 scenario × B ∈ {1, 2, 4, 8}),
so the pin covers the vectors the experiments actually use.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import PLATFORM2, enumerate_submeshes
from repro.experiments import FAST
from repro.experiments.scenarios import scenario_grid
from repro.parallel import LatencyTable, slice_stages
from repro.runtime import PipelineSimulator, whitebox_latency
from repro.runtime.schedules import get_schedule

SPEC = get_schedule("1f1b")
MICROBATCHES = (1, 2, 4, 8)


def _random_vectors(n_cases: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    for _ in range(n_cases):
        stages = rng.uniform(1e-4, 5.0,
                             size=int(rng.integers(1, 9))).tolist()
        yield stages, int(rng.integers(1, 17))


@pytest.fixture(scope="module")
def profiled_vectors(tiny_gpt, tiny_gpt_profiler, tiny_gpt_clustering):
    """Per-unit stage-latency vectors of the fast-profile GPT on every
    platform-2 runtime configuration."""
    vectors = []
    for sc in scenario_grid("platform2"):
        mesh = sc.mesh()
        times = []
        for u in range(tiny_gpt_clustering.n_units):
            s, e = tiny_gpt_clustering.slice_range(u, u + 1)
            times.append(tiny_gpt_profiler.profile_stage(
                s, e, mesh, sc.dp, sc.mp).latency)
        vectors.append((sc.key, times))
    return vectors


class TestClosedFormBitIdentical:
    def test_synthetic(self):
        for stages, B in _random_vectors(500):
            assert SPEC.closed_form(stages, B) == \
                whitebox_latency(stages, B)

    def test_profiled_grid(self, profiled_vectors):
        for key, times in profiled_vectors:
            for B in MICROBATCHES:
                assert SPEC.closed_form(times, B) == \
                    whitebox_latency(times, B), (key, B)


class TestEngineBitIdentical:
    def test_synthetic(self):
        for stages, B in _random_vectors(500, seed=1):
            seed_sim = PipelineSimulator(stages, B).run().makespan
            assert SPEC.simulated_latency(stages, B) == seed_sim

    def test_profiled_grid(self, profiled_vectors):
        for key, times in profiled_vectors:
            for B in MICROBATCHES:
                seed_sim = PipelineSimulator(times, B).run().makespan
                assert SPEC.simulated_latency(times, B) == seed_sim, \
                    (key, B)


class TestDPBitIdentical:
    def _random_table(self, n_units, n_meshes, seed):
        rng = np.random.default_rng(seed)
        t = LatencyTable()
        for i in range(n_units):
            for j in range(i + 1, n_units + 1):
                for mi in range(n_meshes):
                    t.set(i, j, mi, float(rng.uniform(1e-3, 2.0) * (j - i)))
        return t

    def test_legacy_and_registry_paths_agree(self, tiny_gpt_clustering):
        cluster = PLATFORM2.cluster()
        submeshes = enumerate_submeshes(cluster)
        for seed in range(20):
            table = self._random_table(tiny_gpt_clustering.n_units,
                                       len(submeshes), seed)
            for B in MICROBATCHES:
                legacy = slice_stages(tiny_gpt_clustering, submeshes, table,
                                      B, total_devices=cluster.num_devices)
                reg = slice_stages(tiny_gpt_clustering, submeshes, table,
                                   B, total_devices=cluster.num_devices,
                                   schedule=SPEC)
                assert reg.iteration_latency == legacy.iteration_latency
                assert [(st.unit_range, st.submesh_index)
                        for st in reg.stages] == \
                    [(st.unit_range, st.submesh_index)
                     for st in legacy.stages]

    def test_profiled_table(self, tiny_gpt_clustering, tiny_gpt_profiler):
        cluster = PLATFORM2.cluster()
        submeshes = enumerate_submeshes(cluster)
        table = LatencyTable()
        for i in range(tiny_gpt_clustering.n_units):
            for j in range(i + 1, tiny_gpt_clustering.n_units + 1):
                s, e = tiny_gpt_clustering.slice_range(i, j)
                for mi, mesh in enumerate(submeshes):
                    p = tiny_gpt_profiler.profile_stage(
                        s, e, mesh, mesh.num_devices, 1)
                    table.set(i, j, mi, p.latency)
        B = FAST.n_microbatches
        legacy = slice_stages(tiny_gpt_clustering, submeshes, table, B,
                              total_devices=cluster.num_devices)
        reg = slice_stages(tiny_gpt_clustering, submeshes, table, B,
                           total_devices=cluster.num_devices, schedule=SPEC)
        assert reg.iteration_latency == legacy.iteration_latency
        assert reg.feasible and legacy.feasible
