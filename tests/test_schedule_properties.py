"""Property tests for the pipeline-schedule registry.

Every registered schedule (the suite parametrizes over
:func:`schedule_names`, so new registrations are covered automatically)
must hold:

* **validation contract** — the event-driven simulation equals the
  schedule's closed form exactly under the flow-shop assumptions;
* **lower bounds** — no schedule beats the bottleneck's busy time
  ``B·max t``; all except 2BP also respect the one-microbatch critical
  path ``Σ t`` (2BP's deferred weight grads overlap across stages, so
  its envelope is the split-aware one it declares);
* **hierarchy** — ``gpipe ≥ 1f1b ≥ interleaved`` pointwise (a flush only
  adds slack; interleaving only removes it, equal at ``V=1``);
* **trace invariants** — every work item executes exactly once, no
  dependency is violated, and no device runs two items at once;
* **determinism** — the event trace is a pure function of the work-item
  *set*: permuting the input list changes nothing.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.schedules import (
    InterleavedSchedule,
    get_schedule,
    schedule_names,
    simulate_items,
)

stage_lists = st.lists(st.floats(0.01, 5.0), min_size=1, max_size=8)
micro = st.integers(1, 16)

ALL_SCHEDULES = schedule_names()


@pytest.mark.parametrize("name", ALL_SCHEDULES)
class TestValidationContract:
    @given(stages=stage_lists, B=micro)
    @settings(max_examples=40, deadline=None)
    def test_simulator_equals_closed_form(self, name, stages, B):
        spec = get_schedule(name)
        cf = spec.validate(stages, B)  # raises on any disagreement
        assert cf == pytest.approx(spec.simulated_latency(stages, B),
                                   rel=1e-9)

    @given(stages=stage_lists, B=micro)
    @settings(max_examples=40, deadline=None)
    def test_respects_declared_lower_bound(self, name, stages, B):
        spec = get_schedule(name)
        sim = spec.simulated_latency(stages, B)
        assert sim >= spec.lower_bound(stages, B) * (1 - 1e-9)
        # the bottleneck-work envelope holds for every schedule
        assert sim >= B * max(stages) * (1 - 1e-9)

    @given(stages=stage_lists, B=micro)
    @settings(max_examples=30, deadline=None)
    def test_transfers_only_add(self, name, stages, B):
        spec = get_schedule(name)
        free = spec.simulated_latency(stages, B)
        slow = spec.simulated_latency(stages, B, transfer_time=0.05)
        assert slow >= free - 1e-12

    @given(stages=stage_lists, B=micro,
           idx_frac=st.floats(0.0, 0.999), bump=st.floats(0.01, 2.0))
    @settings(max_examples=30, deadline=None)
    def test_closed_form_monotone_in_stage_times(self, name, stages, B,
                                                 idx_frac, bump):
        spec = get_schedule(name)
        slower = list(stages)
        slower[int(idx_frac * len(stages))] += bump
        assert spec.closed_form(slower, B) >= \
            spec.closed_form(stages, B) - 1e-12

    @given(stages=stage_lists, B=micro)
    @settings(max_examples=30, deadline=None)
    def test_dp_objective_is_an_upper_proxy(self, name, stages, B):
        """The DP objective at (Σ t, max t) never undercuts the closed
        form — planning with it is conservative, never optimistic."""
        spec = get_schedule(name)
        obj = spec.dp_objective(sum(stages), max(stages), B)
        assert obj >= spec.closed_form(stages, B) * (1 - 1e-9)


class TestCriticalPathBound:
    @pytest.mark.parametrize("name", ("1f1b", "gpipe", "interleaved"))
    @given(stages=stage_lists, B=micro)
    @settings(max_examples=30, deadline=None)
    def test_non_overlapping_schedules_respect_sum(self, name, stages, B):
        """Without 2BP's deferred-work overlap, nothing beats Σ t."""
        sim = get_schedule(name).simulated_latency(stages, B)
        assert sim >= sum(stages) * (1 - 1e-9)


class TestHierarchy:
    @given(stages=stage_lists, B=micro)
    @settings(max_examples=40, deadline=None)
    def test_gpipe_geq_1f1b_geq_interleaved(self, stages, B):
        gpipe = get_schedule("gpipe").simulated_latency(stages, B)
        onef = get_schedule("1f1b").simulated_latency(stages, B)
        inter = get_schedule("interleaved").simulated_latency(stages, B)
        assert gpipe >= onef * (1 - 1e-9)
        assert onef >= inter * (1 - 1e-9)

    @given(stages=stage_lists, B=micro)
    @settings(max_examples=30, deadline=None)
    def test_one_virtual_stage_is_plain_1f1b(self, stages, B):
        v1 = InterleavedSchedule(virtual_stages=1)
        assert v1.simulated_latency(stages, B) == pytest.approx(
            get_schedule("1f1b").simulated_latency(stages, B), rel=1e-12)


@pytest.mark.parametrize("name", ALL_SCHEDULES)
class TestTraceInvariants:
    @given(stages=stage_lists, B=st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_trace_is_a_valid_execution(self, name, stages, B):
        spec = get_schedule(name)
        items = spec.work_items(stages, B)
        sched = simulate_items(items)
        span = {(e.stage, e.microbatch, e.phase): (e.start, e.time)
                for e in sched.events}
        # every item executes exactly once
        assert len(sched.events) == len(items)
        assert set(span) == {it.key for it in items}
        for it in items:
            start, end = span[it.key]
            assert end == pytest.approx(start + it.duration, rel=1e-12)
            # no dependency violated (zero transfer cost here)
            for dep in it.deps:
                assert span[dep][1] <= start + 1e-12
        # no device runs two items at once
        by_device: dict[int, list[tuple[float, float]]] = {}
        for it in items:
            by_device.setdefault(it.device, []).append(span[it.key])
        for spans in by_device.values():
            spans.sort()
            for (_, end), (nxt, _) in zip(spans, spans[1:]):
                assert nxt >= end - 1e-12

    @given(stages=stage_lists, B=st.integers(1, 8),
           seed=st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_trace_independent_of_item_order(self, name, stages, B, seed):
        """The heap tie-break makes the trace a function of the item set."""
        import random

        spec = get_schedule(name)
        items = spec.work_items(stages, B)
        base = simulate_items(items)
        shuffled = list(items)
        random.Random(seed).shuffle(shuffled)
        again = simulate_items(shuffled)
        assert again.makespan == base.makespan
        assert again.events == base.events


class TestEngineEdgeCases:
    def test_duplicate_items_rejected(self):
        spec = get_schedule("1f1b")
        items = spec.work_items([1.0, 2.0], 2)
        with pytest.raises(ValueError, match="duplicate"):
            simulate_items(items + [items[0]])

    def test_unknown_dependency_rejected(self):
        from repro.runtime.schedules import WorkItem

        bad = WorkItem(0, 0, "pass", 0, 1.0, (0,), ((9, 9, "pass"),))
        with pytest.raises(ValueError, match="unknown dependency"):
            simulate_items([bad])

    def test_cyclic_dependencies_detected(self):
        from repro.runtime.schedules import WorkItem

        a = WorkItem(0, 0, "a", 0, 1.0, (0,), ((0, 0, "b"),))
        b = WorkItem(0, 0, "b", 1, 1.0, (0,), ((0, 0, "a"),))
        with pytest.raises(RuntimeError, match="deadlock"):
            simulate_items([a, b])

    def test_empty_schedule(self):
        sched = simulate_items([])
        assert sched.makespan == 0.0 and sched.events == []

    @pytest.mark.parametrize("name", ALL_SCHEDULES)
    def test_degenerate_inputs_rejected(self, name):
        spec = get_schedule(name)
        with pytest.raises(ValueError):
            spec.simulate([], 4)
        with pytest.raises(ValueError):
            spec.simulate([1.0], 0)
