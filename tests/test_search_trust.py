"""Chaos + trust tests for the guarded PredTOP plan search.

The acceptance scenario of the trust layer: with a lying predictor
(``predict_garbage``), a throwing predictor (``predictor_error``), and a
diverging trainer (``train_diverge``) injected, ``search_predtop`` must
finish without an exception, record its degradations, and — with the
escalation budget available — select a plan whose *simulated* latency is
within 5 % of the fault-free run's plan.
"""

import numpy as np
import pytest

from repro.cluster.platforms import get_platform
from repro.core.search import PlanSearcher
from repro.predictors.trainer import TrainConfig
from repro.predictors.trust import TrustConfig

PLATFORM2 = get_platform("platform2")

#: aggressive guarding + effectively unlimited re-profiling budget
CHAOS_TRUST = TrustConfig(enabled=True, ensemble_size=2, budget=1e9)


def make_searcher(tiny_gpt, tiny_gpt_clustering, tiny_gpt_profiler,
                  trust=None):
    return PlanSearcher(
        tiny_gpt, tiny_gpt_clustering, PLATFORM2.cluster(),
        n_microbatches=4,
        profiler=tiny_gpt_profiler,
        sample_fraction=0.5,
        train_config=TrainConfig(epochs=6, patience=6, batch_size=8),
        seed=0,
        jobs=1,
        trust=trust,
    )


@pytest.fixture(scope="module")
def clean_result(tiny_gpt, tiny_gpt_clustering, tiny_gpt_profiler):
    """Fault-free baseline (trust disabled: the unguarded fast path)."""
    searcher = make_searcher(tiny_gpt, tiny_gpt_clustering,
                             tiny_gpt_profiler, trust=TrustConfig())
    return searcher.search_predtop("gcn")


class TestCleanPath:
    def test_trust_stats_attached_but_empty(self, clean_result):
        assert clean_result.trust is not None
        assert clean_result.trust.total == 0  # guards off: nothing assessed
        assert clean_result.trust.degraded == 0
        assert clean_result.degradations == []

    def test_trust_enabled_keeps_plan_quality(self, tiny_gpt,
                                              tiny_gpt_clustering,
                                              tiny_gpt_profiler,
                                              clean_result):
        searcher = make_searcher(tiny_gpt, tiny_gpt_clustering,
                                 tiny_gpt_profiler, trust=CHAOS_TRUST)
        r = searcher.search_predtop("gcn")
        assert r.trust.total > 0  # every predicted entry was assessed
        assert r.true_iteration_latency <= clean_result.true_iteration_latency * 1.05


class TestChaosSearch:
    FAULTS = ("predict_garbage:at=0,attempts=*;"
              "predictor_error:at=1;"
              "train_diverge:at=1")

    def test_survives_predictor_faults_within_5pct(
            self, tiny_gpt, tiny_gpt_clustering, tiny_gpt_profiler,
            clean_result, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", self.FAULTS)
        searcher = make_searcher(tiny_gpt, tiny_gpt_clustering,
                                 tiny_gpt_profiler, trust=CHAOS_TRUST)
        r = searcher.search_predtop("gcn")
        # the search completed and the plan is feasible
        assert r.plan.feasible
        # the throwing predictor degraded one submesh, and it is recorded
        assert any("predictor error" in d or "InjectedFault" in d
                   for d in r.degradations)
        assert r.trust.degraded >= 1
        # the garbage submesh's entries were caught by the guards and
        # escalated (bounds violations at x1000 / /1000 cannot be missed)
        assert r.trust.out_of_bounds + r.trust.escalated_profiled > 0
        # with budget available, escalation re-profiles suspect entries
        assert r.trust.escalated_profiled > 0
        assert r.trust.budget_spent > 0
        # acceptance criterion: simulated plan latency within 5% of clean
        assert (r.true_iteration_latency
                <= clean_result.true_iteration_latency * 1.05)

    def test_garbage_without_trust_is_survivable_but_worse(
            self, tiny_gpt, tiny_gpt_clustering, tiny_gpt_profiler,
            monkeypatch):
        # guards off: the search still completes (robustness floor) even
        # though every submesh's predictions are scrambled
        monkeypatch.setenv("REPRO_FAULTS", "predict_garbage:attempts=*")
        searcher = make_searcher(tiny_gpt, tiny_gpt_clustering,
                                 tiny_gpt_profiler, trust=TrustConfig())
        r = searcher.search_predtop("gcn")
        assert r.plan.feasible
        assert np.isfinite(r.true_iteration_latency)

    def test_train_divergence_retrains_then_degrades(
            self, tiny_gpt, tiny_gpt_clustering, tiny_gpt_profiler,
            monkeypatch):
        # transient divergence: one fresh-seed retraining absorbs it
        monkeypatch.setenv("REPRO_FAULTS", "train_diverge:at=1")
        searcher = make_searcher(tiny_gpt, tiny_gpt_clustering,
                                 tiny_gpt_profiler, trust=TrustConfig())
        r = searcher.search_predtop("gcn")
        assert r.trust.retrained > 0
        assert r.trust.degraded == 0 and r.plan.feasible

        # persistent divergence: retraining fails too -> the submesh
        # degrades to the analytical fallback, search still completes
        monkeypatch.setenv("REPRO_FAULTS", "train_diverge:at=1,attempts=*")
        searcher = make_searcher(tiny_gpt, tiny_gpt_clustering,
                                 tiny_gpt_profiler, trust=TrustConfig())
        r = searcher.search_predtop("gcn")
        assert r.trust.degraded > 0
        assert any("diverged" in d for d in r.degradations)
        assert r.plan.feasible
        assert np.isfinite(r.true_iteration_latency)
