"""Serve bench harness: a tiny fleet against an external daemon, clean
and under the canonical chaos plan — zero unanswered requests, always."""

from __future__ import annotations

import pytest

from repro.experiments import manifest
from repro.perf.servebench import run_noisy_neighbor_bench, run_serve_bench
from repro.serving import ReproServer, ServerConfig

#: the chaos plan CI's serve-smoke job also runs (pinned seeds verified
#: to fire every client-side site at these fleet sizes)
CHAOS = ("worker_crash:p=0.3,seed=5;conn_drop:p=0.08,seed=1;"
         "request_garbage:p=0.1,seed=7;slow_client:p=0.05,seed=3")

#: the router lane's plan: hard-kill one replica after 5 answered
#: requests, keep it down 1 s, restart it on the same port
ROUTER_CHAOS = "replica_down:at=5,seed=1,secs=1"


@pytest.fixture(scope="module")
def daemon(serving_runtime):
    srv = ReproServer(serving_runtime, ServerConfig(
        port=0, workers=2, read_timeout_s=0.5))
    srv.start()
    yield srv
    srv.stop()


class TestServeBench:
    def test_clean_fleet_all_answered(self, daemon):
        result = run_serve_bench(quick=True, address=daemon.address,
                                 clients=3, requests_per_client=6)
        assert result["schema"].startswith("predtop.bench_serve/")
        assert result["requests_sent"] == 18
        assert result["zero_unanswered"]
        assert result["totals"]["unanswered"] == 0
        assert result["answered"] + result["totals"]["shed_final"] >= 18 - (
            result["totals"]["conn_drops"])
        assert result["totals"]["ok"] > 0
        assert "predict" in result["latency"]
        stats = result["latency"]["predict"]
        assert 0 < stats["p50_ms"] <= stats["p99_ms"]
        assert result["server_health"]["status"] == "ready"

    def test_chaos_fleet_all_answered(self, daemon, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", CHAOS)
        result = run_serve_bench(quick=True, address=daemon.address,
                                 clients=4, requests_per_client=12)
        t = result["totals"]
        assert result["zero_unanswered"], t
        # the pinned seeds make every misbehaving-client site fire
        assert t["garbage_sent"] > 0
        assert t["conn_drops"] > 0
        assert t["slow_loris"] > 0
        assert t["ok"] > 0
        assert result["error_responses"].get("invalid_request", 0) > 0
        assert result["faults"] == CHAOS

    def test_router_fleet_survives_replica_kill(self, serving_runtime,
                                                monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_FAULTS", ROUTER_CHAOS)
        result = run_serve_bench(quick=True, clients=4,
                                 requests_per_client=10,
                                 router_replicas=2, journal_root=tmp_path,
                                 runtime=serving_runtime)
        assert result["zero_unanswered"], result["totals"]
        router = result["router"]
        assert router["replicas"] == 2
        chaos = {e["event"]: e for e in router["chaos"]}
        assert "replica_killed" in chaos
        assert chaos.get("replica_restarted", {}).get("rejoined"), \
            "the killed replica must rejoin the ring"
        # the kill window forced at least one journaled failover
        events = manifest.read_events(tmp_path)
        kinds = {e["event"] for e in events}
        assert "replica_health" in kinds
        assert router["failovers"] >= 1 or "failover" in kinds or \
            result["totals"]["shed_final"] > 0
        assert result["server_health"]["router"]

    def test_noisy_neighbor_isolation_holds(self, serving_runtime,
                                            tmp_path):
        result = run_noisy_neighbor_bench(quick=True,
                                          runtime=serving_runtime,
                                          journal_root=tmp_path)
        assert result["solo"]["victim_n"] > 0
        assert result["isolated"]["victim_unanswered"] == 0
        assert result["unisolated"]["victim_unanswered"] == 0
        # the aggressor actually got throttled in the isolated phase
        # (rate_limited answers are retried, so they land as shed stats)
        iso = result["isolated"]
        assert iso["aggressor_shed_retries"] + iso["aggressor_shed_final"] > 0
        assert result["isolated_p99_ratio"] <= 2.0
        assert result["isolation_holds"]

    def test_replay_is_deterministic_traffic(self, daemon):
        a = run_serve_bench(quick=True, address=daemon.address,
                            clients=2, requests_per_client=5)
        b = run_serve_bench(quick=True, address=daemon.address,
                            clients=2, requests_per_client=5)
        # same fleet, same seeds: identical op mixes and tallies
        assert {op: s["n"] for op, s in a["latency"].items()} == \
               {op: s["n"] for op, s in b["latency"].items()}
        assert a["totals"]["ok"] == b["totals"]["ok"]
