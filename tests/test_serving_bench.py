"""Serve bench harness: a tiny fleet against an external daemon, clean
and under the canonical chaos plan — zero unanswered requests, always."""

from __future__ import annotations

import pytest

from repro.perf.servebench import run_serve_bench
from repro.serving import ReproServer, ServerConfig

#: the chaos plan CI's serve-smoke job also runs (pinned seeds verified
#: to fire every client-side site at these fleet sizes)
CHAOS = ("worker_crash:p=0.3,seed=5;conn_drop:p=0.08,seed=1;"
         "request_garbage:p=0.1,seed=7;slow_client:p=0.05,seed=3")


@pytest.fixture(scope="module")
def daemon(serving_runtime):
    srv = ReproServer(serving_runtime, ServerConfig(
        port=0, workers=2, read_timeout_s=0.5))
    srv.start()
    yield srv
    srv.stop()


class TestServeBench:
    def test_clean_fleet_all_answered(self, daemon):
        result = run_serve_bench(quick=True, address=daemon.address,
                                 clients=3, requests_per_client=6)
        assert result["schema"].startswith("predtop.bench_serve/")
        assert result["requests_sent"] == 18
        assert result["zero_unanswered"]
        assert result["totals"]["unanswered"] == 0
        assert result["answered"] + result["totals"]["shed_final"] >= 18 - (
            result["totals"]["conn_drops"])
        assert result["totals"]["ok"] > 0
        assert "predict" in result["latency"]
        stats = result["latency"]["predict"]
        assert 0 < stats["p50_ms"] <= stats["p99_ms"]
        assert result["server_health"]["status"] == "ready"

    def test_chaos_fleet_all_answered(self, daemon, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", CHAOS)
        result = run_serve_bench(quick=True, address=daemon.address,
                                 clients=4, requests_per_client=12)
        t = result["totals"]
        assert result["zero_unanswered"], t
        # the pinned seeds make every misbehaving-client site fire
        assert t["garbage_sent"] > 0
        assert t["conn_drops"] > 0
        assert t["slow_loris"] > 0
        assert t["ok"] > 0
        assert result["error_responses"].get("invalid_request", 0) > 0
        assert result["faults"] == CHAOS

    def test_replay_is_deterministic_traffic(self, daemon):
        a = run_serve_bench(quick=True, address=daemon.address,
                            clients=2, requests_per_client=5)
        b = run_serve_bench(quick=True, address=daemon.address,
                            clients=2, requests_per_client=5)
        # same fleet, same seeds: identical op mixes and tallies
        assert {op: s["n"] for op, s in a["latency"].items()} == \
               {op: s["n"] for op, s in b["latency"].items()}
        assert a["totals"]["ok"] == b["totals"]["ok"]
