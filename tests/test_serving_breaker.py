"""Circuit breaker: state machine, journaling, and the deterministic
trust-degradation round trip through the live batcher (breaker opens →
analytical ``degraded: true`` answers → half-open probe → recovery)."""

from __future__ import annotations

import json
import time

from repro.experiments import manifest
from repro.serving.batcher import MicroBatcher, _Pending
from repro.serving.breaker import BreakerConfig, CircuitBreaker
from repro.serving.protocol import parse_request


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def make_breaker(tmp_path=None, **kw):
    clock = FakeClock()
    cfg = BreakerConfig(**{"failure_threshold": 3, "window": 6,
                           "cooldown_s": 5.0, **kw})
    return CircuitBreaker("predict", cfg, journal_root=tmp_path,
                          clock=clock), clock


class TestStateMachine:
    def test_starts_closed_and_allows_model(self):
        b, _ = make_breaker()
        assert b.state == "closed"
        assert b.allow_model()

    def test_trips_at_threshold_within_window(self):
        b, _ = make_breaker()
        b.record(False, "a")
        b.record(True)
        b.record(False, "b")
        assert b.state == "closed"
        b.record(False, "c")
        assert b.state == "open"
        assert not b.allow_model()

    def test_successes_age_failures_out_of_the_window(self):
        b, _ = make_breaker()
        b.record(False)
        b.record(False)
        for _ in range(6):
            b.record(True)
        b.record(False)
        assert b.state == "closed"  # old failures slid out

    def test_half_open_admits_exactly_one_probe(self):
        b, clock = make_breaker()
        for _ in range(3):
            b.record(False)
        assert not b.allow_model()
        clock.advance(5.1)
        assert b.state == "half_open"
        assert b.allow_model()       # the probe
        assert not b.allow_model()   # everyone else stays analytical

    def test_probe_success_closes_and_clears_history(self):
        b, clock = make_breaker()
        for _ in range(3):
            b.record(False)
        clock.advance(5.1)
        assert b.allow_model()
        b.record(True)
        assert b.state == "closed"
        assert b.snapshot()["failures_in_window"] == 0

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        b, clock = make_breaker()
        for _ in range(3):
            b.record(False)
        clock.advance(5.1)
        assert b.allow_model()
        b.record(False, "still broken")
        assert b.state == "open"
        assert not b.allow_model()
        clock.advance(5.1)
        assert b.allow_model()  # a fresh probe after the new cooldown

    def test_stale_outcomes_ignored_while_open(self):
        b, _ = make_breaker()
        for _ in range(3):
            b.record(False)
        b.record(True)  # a straggler from before the trip
        assert b.state == "open"

    def test_force_open(self):
        b, _ = make_breaker()
        b.force_open("queue saturated")
        assert b.state == "open"
        assert b.transitions[-1][2] == "queue saturated"

    def test_transitions_are_journaled(self, tmp_path):
        b, clock = make_breaker(tmp_path)
        for _ in range(3):
            b.record(False, "injected")
        clock.advance(5.1)
        assert b.allow_model()
        b.record(True)
        events = [e for e in manifest.read_events(tmp_path)
                  if e["event"] == "breaker"]
        assert [(e["from"], e["to"]) for e in events] == [
            ("closed", "open"), ("open", "half_open"),
            ("half_open", "closed")]
        assert all(e["route"] == "predict" for e in events)
        assert "injected" in events[0]["reason"]


class TestDegradationRoundTrip:
    """Satellite: the full trip through the live micro-batcher, made
    deterministic by ``REPRO_FAULTS`` (the first three model calls raise
    ``predictor_error``; call 3 is the clean half-open probe)."""

    def ask(self, runtime, batcher):
        # slice [0, 2] is a verdict-clean prediction for this runtime, so
        # breaker outcomes are driven purely by the injected faults
        req = parse_request(json.dumps(
            {"op": "predict", "params": {"slice": [0, 2]},
             "deadline_ms": 30_000}))
        pending = _Pending(req, runtime.resolve_graphs(req.params, False))
        assert batcher.submit(pending)
        resp = pending.wait(30.0)
        assert resp is not None, "every accepted request must be answered"
        return resp

    def test_breaker_round_trip_under_faults(self, serving_runtime,
                                             monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_FAULTS",
                           "predictor_error:at=0|1|2,attempts=*")
        serving_runtime._model_calls = 0  # pin the fault indices
        breaker = CircuitBreaker(
            "predict",
            BreakerConfig(failure_threshold=3, window=6, cooldown_s=0.2),
            journal_root=tmp_path)
        batcher = MicroBatcher(serving_runtime, breaker,
                               max_batch=4, window_ms=0.0, max_queue=16)
        batcher.start()
        try:
            # three poisoned model calls: each one is answered from the
            # analytical fallback (degraded) and counts as a failure
            for _ in range(3):
                resp = self.ask(serving_runtime, batcher)
                assert resp["ok"] and resp["degraded"]
                assert resp["served_by"] == "analytical"
            assert breaker.state == "open"

            # while open: analytical answers without touching the model
            calls_before = serving_runtime._model_calls
            resp = self.ask(serving_runtime, batcher)
            assert resp["ok"] and resp["degraded"]
            assert serving_runtime._model_calls == calls_before

            # after cooldown the next request is the half-open probe;
            # model-call index 3 is clean, so the probe recovers the route
            time.sleep(0.25)
            resp = self.ask(serving_runtime, batcher)
            assert resp["ok"] and not resp["degraded"]
            assert resp["served_by"] == "model"
            assert breaker.state == "closed"

            # and the route stays healthy
            resp = self.ask(serving_runtime, batcher)
            assert resp["ok"] and not resp["degraded"]
        finally:
            batcher.stop()

        events = [e for e in manifest.read_events(tmp_path)
                  if e["event"] == "breaker"]
        assert [(e["from"], e["to"]) for e in events] == [
            ("closed", "open"), ("open", "half_open"),
            ("half_open", "closed")]
