"""Wire protocol: parsing, validation, response shapes."""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.serving.protocol import (MAX_DEADLINE_MS, OP_SUMMARIES, OPS,
                                    PROTOCOL_VERSION, ProtocolError,
                                    encode_response, error_response,
                                    ok_response, parse_request)
from repro.serving.tenancy import DEFAULT_TENANT, TENANT_NAME_MAX


class TestParse:
    def test_minimal_request(self):
        req = parse_request('{"op": "health"}')
        assert req.op == "health"
        assert req.id is None
        assert req.params == {}
        assert req.remaining() > 0

    def test_full_request_echoes_id(self):
        req = parse_request(json.dumps({
            "op": "predict", "id": "c3-17", "deadline_ms": 500,
            "params": {"slice": [0, 2]}}))
        assert req.id == "c3-17"
        assert req.deadline_ms == 500.0
        assert req.params == {"slice": [0, 2]}

    def test_accepts_bytes(self):
        assert parse_request(b'{"op": "health"}').op == "health"

    def test_deadline_clamped_to_ceiling(self):
        req = parse_request('{"op": "health", "deadline_ms": 1e12}')
        assert req.deadline_ms == MAX_DEADLINE_MS

    def test_deadline_floor_is_one_ms(self):
        assert parse_request(
            '{"op": "health", "deadline_ms": -5}').deadline_ms == 1.0

    def test_deadline_exact_boundaries_pass_unclamped(self):
        assert parse_request(
            '{"op": "health", "deadline_ms": 1}').deadline_ms == 1.0
        assert parse_request(json.dumps(
            {"op": "health",
             "deadline_ms": MAX_DEADLINE_MS})).deadline_ms == MAX_DEADLINE_MS

    def test_null_params_means_empty(self):
        assert parse_request('{"op": "health", "params": null}').params == {}

    @pytest.mark.parametrize("line,code", [
        (b"\x80\x81 not utf8", "invalid_request"),
        ("{not json", "invalid_request"),
        ("[1, 2]", "invalid_request"),
        ('{"no": "op"}', "invalid_request"),
        ('{"op": 17}', "invalid_request"),
        ('{"op": "explode"}', "unknown_op"),
        ('{"op": "predict", "params": "nope"}', "bad_params"),
        ('{"op": "predict", "deadline_ms": "soon"}', "invalid_request"),
        ('{"op": "predict", "deadline_ms": true}', "invalid_request"),
    ])
    def test_malformed_requests_get_typed_errors(self, line, code):
        with pytest.raises(ProtocolError) as err:
            parse_request(line)
        assert err.value.code == code

    def test_rejections_keep_the_request_id(self):
        # a pipelined client must be able to correlate even rejections
        with pytest.raises(ProtocolError) as err:
            parse_request('{"op": "explode", "id": 41}')
        assert err.value.code == "unknown_op" and err.value.req_id == 41
        with pytest.raises(ProtocolError) as err:
            parse_request('{"op": "predict", "id": "c7", "params": 3}')
        assert err.value.req_id == "c7"
        with pytest.raises(ProtocolError) as err:
            parse_request("{not json")  # no id extractable
        assert err.value.req_id is None

    def test_protocol_version_is_two(self):
        assert PROTOCOL_VERSION == 2

    def test_expiry_is_monotonic(self):
        req = parse_request('{"op": "health", "deadline_ms": 1}')
        assert not req.remaining(now=req.received) <= 0
        time.sleep(0.005)
        assert req.expired


class TestTenantField:
    def test_absent_tenant_is_the_default_class(self):
        # the whole v1 surface: no tenant field anywhere
        assert parse_request('{"op": "health"}').tenant == DEFAULT_TENANT

    @pytest.mark.parametrize("raw", [None, "", "   "])
    def test_null_and_blank_collapse_to_default(self, raw):
        req = parse_request(json.dumps({"op": "health", "tenant": raw}))
        assert req.tenant == DEFAULT_TENANT

    def test_tenant_is_preserved_and_stripped(self):
        req = parse_request('{"op": "health", "tenant": "  team-a "}')
        assert req.tenant == "team-a"

    def test_tenant_accepted_on_every_op(self):
        for op in OPS:
            req = parse_request(json.dumps({"op": op, "tenant": "t"}))
            assert req.tenant == "t"

    @pytest.mark.parametrize("raw", [17, True, ["a"], {"n": "a"}])
    def test_non_string_tenant_is_a_typed_error(self, raw):
        with pytest.raises(ProtocolError) as err:
            parse_request(json.dumps(
                {"op": "health", "id": "t1", "tenant": raw}))
        assert err.value.code == "invalid_request"
        assert err.value.req_id == "t1"

    def test_oversized_tenant_is_rejected(self):
        name = "x" * (TENANT_NAME_MAX + 1)
        with pytest.raises(ProtocolError) as err:
            parse_request(json.dumps({"op": "health", "tenant": name}))
        assert err.value.code == "invalid_request"
        # exactly at the cap is fine
        ok = parse_request(json.dumps(
            {"op": "health", "tenant": "x" * TENANT_NAME_MAX}))
        assert ok.tenant == "x" * TENANT_NAME_MAX


class TestResponses:
    def test_ok_response_shape(self):
        req = parse_request('{"op": "predict", "id": 7}')
        resp = ok_response(req, {"latency_s": 0.1}, degraded=True,
                           served_by="analytical")
        assert resp["ok"] and resp["id"] == 7 and resp["degraded"]
        assert resp["served_by"] == "analytical"
        assert resp["t_ms"] >= 0
        assert resp["result"] == {"latency_s": 0.1}

    def test_error_response_carries_retry_hint(self):
        resp = error_response("x", "overloaded", "queue full",
                              retry_after_ms=33.333)
        assert not resp["ok"]
        assert resp["error"]["code"] == "overloaded"
        assert resp["retry_after_ms"] == 33.3

    def test_encode_is_one_json_line(self):
        wire = encode_response(error_response(None, "internal", "boom"))
        assert wire.endswith(b"\n") and wire.count(b"\n") == 1
        assert json.loads(wire)["error"]["code"] == "internal"

    def test_encode_renders_numpy_scalars(self):
        req = parse_request('{"op": "predict"}')
        wire = encode_response(ok_response(req, {
            "latency_s": np.float64(0.25), "n": np.int64(3)}))
        result = json.loads(wire)["result"]
        assert result == {"latency_s": 0.25, "n": 3}

    def test_every_op_is_documented(self):
        assert set(OP_SUMMARIES) == set(OPS)
