"""Replicated failover router: consistent hashing, health probing,
at-most-once failover, and replica rejoin — over real sockets."""

from __future__ import annotations

import json
import socket
import time

import pytest

from repro.experiments import manifest
from repro.serving import (HashRing, ReproRouter, ReproServer, RouterConfig,
                           ServerConfig, request_hash)


class Client:
    """A tiny line-oriented test client."""

    def __init__(self, address, timeout=30.0):
        self.sock = socket.create_connection(address, timeout=timeout)
        self.buf = b""

    def rpc(self, request: dict):
        self.sock.sendall((json.dumps(request) + "\n").encode())
        return self.read()

    def send_raw(self, data: bytes):
        self.sock.sendall(data)

    def read(self):
        while b"\n" not in self.buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                return None
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        return json.loads(line)

    def close(self):
        try:
            self.sock.close()
        except OSError:
            pass


class TestRequestHash:
    def test_structural_only(self):
        base = {"op": "predict", "params": {"slice": [0, 2]}}
        a = request_hash(json.dumps(base).encode())
        b = request_hash(json.dumps({**base, "id": "other",
                                     "tenant": "team-a",
                                     "deadline_ms": 5}).encode())
        assert a == b  # id/tenant/deadline do not move the request

    def test_params_change_the_hash(self):
        a = request_hash(b'{"op": "predict", "params": {"slice": [0, 1]}}')
        b = request_hash(b'{"op": "predict", "params": {"slice": [0, 2]}}')
        c = request_hash(b'{"op": "whatif", "params": {"slice": [0, 1]}}')
        assert len({a, b, c}) == 3

    def test_garbage_hashes_stably(self):
        assert request_hash(b"not json") == request_hash(b"not json")


class TestHashRing:
    REPLICAS = [("127.0.0.1", 7001), ("127.0.0.1", 7002),
                ("127.0.0.1", 7003)]

    def test_order_is_a_full_preference_list(self):
        ring = HashRing(self.REPLICAS)
        for key in range(20):
            order = ring.order(request_hash(str(key).encode()))
            assert sorted(order) == [0, 1, 2]

    def test_order_is_deterministic(self):
        a = HashRing(self.REPLICAS)
        b = HashRing(self.REPLICAS)
        keys = [request_hash(str(k).encode()) for k in range(50)]
        assert [a.order(k) for k in keys] == [b.order(k) for k in keys]

    def test_keys_spread_across_replicas(self):
        ring = HashRing(self.REPLICAS)
        owners = {ring.order(request_hash(str(k).encode()))[0]
                  for k in range(200)}
        assert owners == {0, 1, 2}

    def test_empty_ring(self):
        assert HashRing([]).order(123) == []


def _request_owned_by(router, idx):
    """A predict_many request whose structural hash routes to replica
    ``idx`` (distinct slices lists give distinct placement hashes)."""
    for n in range(1, 64):
        req = {"op": "predict_many", "id": f"owned-{idx}-{n}",
               "deadline_ms": 20_000,
               "params": {"slices": [[0, 1 + (k % 3)] for k in range(n)]}}
        line = (json.dumps(req) + "\n").encode()
        if router.ring.order(request_hash(line))[0] == idx:
            return req
    raise AssertionError(f"no probe request landed on replica {idx}")


@pytest.fixture(scope="module")
def fleet(serving_runtime, tmp_path_factory):
    root = tmp_path_factory.mktemp("router-journal")
    servers = []
    for i in range(2):
        srv = ReproServer(serving_runtime, ServerConfig(
            port=0, workers=2, read_timeout_s=0.5, idle_timeout_s=30.0,
            replica_ordinal=i))
        srv.start()
        servers.append(srv)
    router = ReproRouter([s.address for s in servers],
                         RouterConfig(health_poll_s=0.2,
                                      connect_timeout_s=0.5),
                         journal_root=root)
    router.start()
    state = {"servers": servers, "router": router, "root": root,
             "runtime": serving_runtime}
    yield state
    router.stop()
    for srv in state["servers"]:
        srv.stop()


@pytest.fixture
def client(fleet):
    c = Client(fleet["router"].address)
    yield c
    c.close()


class TestRouting:
    def test_predict_through_router(self, client):
        resp = client.rpc({"op": "predict", "id": "r1",
                           "params": {"slice": [0, 2]}})
        assert resp["ok"] and resp["id"] == "r1"
        assert resp["result"]["latency_s"] > 0

    def test_tenant_field_passes_through(self, client):
        resp = client.rpc({"op": "predict", "id": "r2", "tenant": "team-a",
                           "params": {"slice": [0, 1]}})
        assert resp["ok"]

    def test_health_is_answered_by_the_router(self, client):
        resp = client.rpc({"op": "health", "id": "h"})
        assert resp["ok"] and resp["served_by"] == "router"
        r = resp["result"]
        assert r["router"] and r["ready"]
        assert len(r["replicas"]) == 2
        assert r["healthy_replicas"] == 2

    def test_malformed_line_reaches_a_replica(self, client):
        client.send_raw(b"this is not json\n")
        resp = client.read()
        assert not resp["ok"]
        assert resp["error"]["code"] == "invalid_request"

    def test_identical_requests_route_identically(self, fleet):
        router = fleet["router"]
        line = b'{"op": "predict", "params": {"slice": [0, 3]}}'
        first = router.ring.order(request_hash(line))
        assert all(router.ring.order(request_hash(line)) == first
                   for _ in range(5))


class TestFailover:
    def test_kill_failover_and_rejoin(self, fleet):
        router, root = fleet["router"], fleet["root"]
        servers = fleet["servers"]
        victim_idx = 0
        victim = servers[victim_idx]
        host, port = victim.address
        req = _request_owned_by(router, victim_idx)

        victim.kill()
        # simulate the pre-probe race: the router still believes the
        # replica is healthy, so the request must fail over live
        router.replicas[victim_idx].healthy = True
        before = router.counters.get("failovers")
        c = Client(router.address)
        try:
            resp = c.rpc(req)
        finally:
            c.close()
        assert resp["ok"], resp  # answered by the surviving replica
        assert router.counters.get("failovers") == before + 1
        assert not router.replicas[victim_idx].healthy

        events = manifest.read_events(root)
        fails = [e for e in events if e["event"] == "failover"]
        assert fails and fails[-1]["from_replica"] == f"{host}:{port}"
        downs = [e for e in events if e["event"] == "replica_health"
                 and not e["healthy"]]
        assert downs

        # while the replica is down, its keys are served without it
        c = Client(router.address)
        try:
            resp = c.rpc(req)
        finally:
            c.close()
        assert resp["ok"]

        # restart on the same port: the prober readmits it on its own
        reborn = ReproServer(fleet["runtime"], ServerConfig(
            host=host, port=port, workers=2, read_timeout_s=0.5,
            idle_timeout_s=30.0, replica_ordinal=victim_idx))
        reborn.start()
        servers[victim_idx] = reborn
        deadline = time.monotonic() + 10.0
        while (not router.replicas[victim_idx].healthy
               and time.monotonic() < deadline):
            time.sleep(0.05)
        assert router.replicas[victim_idx].healthy
        ups = [e for e in manifest.read_events(root)
               if e["event"] == "replica_health" and e["healthy"]]
        assert ups  # the rejoin is journaled

    def test_total_failure_is_an_answer_not_a_hang(self, serving_runtime,
                                                   tmp_path):
        srv = ReproServer(serving_runtime, ServerConfig(
            port=0, workers=1, read_timeout_s=0.5))
        srv.start()
        router = ReproRouter([srv.address],
                             RouterConfig(health_poll_s=5.0,
                                          connect_timeout_s=0.5),
                             journal_root=tmp_path)
        router.start()
        try:
            srv.kill()
            router.replicas[0].healthy = True
            c = Client(router.address)
            try:
                resp = c.rpc({"op": "predict", "id": "doomed",
                              "deadline_ms": 2_000,
                              "params": {"slice": [0, 1]}})
            finally:
                c.close()
            assert not resp["ok"]
            assert resp["error"]["code"] == "overloaded"
            assert resp["retry_after_ms"] > 0
        finally:
            router.stop()
            srv.stop()

    def test_draining_router_refuses_politely(self, serving_runtime):
        srv = ReproServer(serving_runtime, ServerConfig(
            port=0, workers=1, read_timeout_s=0.5))
        srv.start()
        router = ReproRouter([srv.address],
                             RouterConfig(health_poll_s=5.0))
        router.start()
        try:
            router.draining = True
            c = Client(router.address)
            try:
                resp = c.rpc({"op": "predict", "id": "late",
                              "params": {"slice": [0, 1]}})
            finally:
                c.close()
            assert not resp["ok"]
            assert resp["error"]["code"] == "draining"
            assert resp["retry_after_ms"] > 0
        finally:
            router.stop()
            srv.stop()
