"""Daemon end-to-end over real sockets: request routing, malformed and
hostile clients, backpressure, drain, and in-place checkpoint reload."""

from __future__ import annotations

import dataclasses
import json
import socket
import threading
import time

import pytest

from repro.experiments import manifest
from repro.serving import (PROTOCOL_VERSION, ReproServer, ServerConfig,
                           TenancyConfig, TenantPolicy)


class Client:
    """A tiny line-oriented test client."""

    def __init__(self, address, timeout=30.0):
        self.sock = socket.create_connection(address, timeout=timeout)
        self.buf = b""

    def send_raw(self, data: bytes):
        self.sock.sendall(data)

    def read(self):
        while b"\n" not in self.buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                return None
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        return json.loads(line)

    def rpc(self, request: dict):
        self.send_raw((json.dumps(request) + "\n").encode())
        return self.read()

    def close(self):
        try:
            self.sock.close()
        except OSError:
            pass


@pytest.fixture(scope="module")
def server(serving_runtime):
    srv = ReproServer(serving_runtime, ServerConfig(
        port=0, workers=2, read_timeout_s=0.5, idle_timeout_s=30.0))
    srv.start()
    yield srv
    srv.stop()


@pytest.fixture
def client(server):
    c = Client(server.address)
    yield c
    c.close()


class TestRouting:
    def test_health(self, client):
        resp = client.rpc({"op": "health", "id": "h"})
        assert resp["ok"] and resp["id"] == "h"
        r = resp["result"]
        assert r["status"] == "ready" and r["ready"] and r["live"]
        assert set(r["breakers"]) == {"predict", "whatif", "search"}
        assert r["queue"]["batch_capacity"] > 0

    def test_predict(self, client):
        resp = client.rpc({"op": "predict", "id": 1,
                           "params": {"slice": [0, 2]}})
        assert resp["ok"]
        out = resp["result"]
        assert out["latency_s"] > 0
        assert out["bounds_s"][0] <= out["latency_s"] <= out["bounds_s"][1]

    def test_predict_many_preserves_order(self, client):
        resp = client.rpc({"op": "predict_many", "id": 2,
                           "params": {"slices": [[0, 1], [0, 3], [1, 2]]}})
        assert resp["ok"]
        preds = resp["result"]["predictions"]
        assert len(preds) == 3
        # the full 3-unit model must cost at least its first unit
        assert preds[1]["latency_s"] >= preds[0]["latency_s"]

    def test_whatif(self, client):
        resp = client.rpc({"op": "whatif", "id": 3,
                           "params": {"n_stages": 2, "n_microbatches": 4}})
        assert resp["ok"]
        out = resp["result"]
        assert out["n_stages"] == 2
        assert out["best_schedule"] in out["iteration_latency_s"]

    def test_search(self, client):
        resp = client.rpc({"op": "search", "id": 4, "deadline_ms": 120_000,
                           "params": {"stage_counts": [1, 2],
                                      "n_microbatches": 4}})
        assert resp["ok"]
        out = resp["result"]
        assert out["best"]["n_stages"] in (1, 2)
        assert len(out["candidates"]) == 2
        assert out["failed_candidates"] == 0 and not out["partial"]

    def test_pipelined_requests_on_one_connection(self, client):
        reqs = b"".join(
            (json.dumps({"op": "predict", "id": i,
                         "params": {"slice": [0, 1]}}) + "\n").encode()
            for i in range(5))
        client.send_raw(reqs)
        ids = sorted(client.read()["id"] for _ in range(5))
        assert ids == list(range(5))


class TestHostileClients:
    def test_garbage_line_gets_error_and_connection_survives(self, client):
        client.send_raw(b"\x00\xffgarbage not json\n")
        resp = client.read()
        assert not resp["ok"]
        assert resp["error"]["code"] == "invalid_request"
        assert client.rpc({"op": "health"})["ok"]  # same connection

    def test_unknown_op_and_bad_params_are_answered(self, client):
        assert client.rpc({"op": "explode"})["error"]["code"] == "unknown_op"
        resp = client.rpc({"op": "predict", "params": {"slice": [7, 99]}})
        assert resp["error"]["code"] == "bad_params"
        resp = client.rpc({"op": "whatif", "params": {"n_stages": 0}})
        assert resp["error"]["code"] == "bad_params"

    def test_oversized_request_is_refused(self, server):
        c = Client(server.address)
        try:
            c.send_raw(b'{"op": "predict", "pad": "' + b"x" * (1 << 20))
            resp = c.read()
            assert resp is not None and not resp["ok"]
            assert resp["error"]["code"] == "invalid_request"
        finally:
            c.close()

    def test_slow_loris_is_reaped_with_an_answer(self, server):
        c = Client(server.address)
        try:
            c.send_raw(b'{"op": "predict", "par')  # dribble, then stall
            t0 = time.monotonic()
            resp = c.read()
            assert resp is not None and not resp["ok"]
            assert resp["error"]["code"] == "invalid_request"
            assert time.monotonic() - t0 < 10.0
        finally:
            c.close()

    def test_conn_drop_mid_request_does_not_kill_the_server(self, server):
        c = Client(server.address)
        c.send_raw((json.dumps({"op": "predict",
                                "params": {"slice": [0, 1]}}) + "\n").encode())
        c.close()  # vanish before the answer
        time.sleep(0.1)
        c2 = Client(server.address)
        try:
            assert c2.rpc({"op": "health"})["ok"]
        finally:
            c2.close()


class TestBackpressure:
    def test_overload_sheds_with_retry_hint_and_answers_everyone(
            self, serving_runtime):
        srv = ReproServer(serving_runtime, ServerConfig(
            port=0, workers=1, max_queue=1, max_batch_queue=2,
            max_batch=1, batch_window_ms=25.0, shed_trip=1000))
        srv.start()
        responses = []
        lock = threading.Lock()

        def one(i):
            c = Client(srv.address)
            try:
                resp = c.rpc({"op": "predict", "id": i,
                              "params": {"slice": [0, 1]}})
                with lock:
                    responses.append(resp)
            finally:
                c.close()

        threads = [threading.Thread(target=one, args=(i,))
                   for i in range(12)]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert len(responses) == 12, "no request may go unanswered"
            shed = [r for r in responses if not r["ok"]]
            served = [r for r in responses if r["ok"]]
            assert served, "some requests must get through"
            for r in shed:
                assert r["error"]["code"] == "overloaded"
                assert r["retry_after_ms"] > 0
        finally:
            srv.stop()

    def test_sustained_saturation_force_opens_the_predict_breaker(
            self, serving_runtime):
        srv = ReproServer(serving_runtime, ServerConfig(
            port=0, workers=1, max_batch_queue=1, max_batch=1,
            batch_window_ms=50.0, shed_trip=2))
        srv.start()
        try:
            cs = [Client(srv.address) for _ in range(6)]
            for i, c in enumerate(cs):
                c.send_raw((json.dumps(
                    {"op": "predict", "id": i,
                     "params": {"slice": [0, 1]}}) + "\n").encode())
            for c in cs:
                assert c.read() is not None
                c.close()
            assert srv.counters.get("shed") >= 2
            assert srv.breakers["predict"].state in ("open", "half_open",
                                                     "closed")
            assert any(t[1] == "open" and "saturated" in t[2]
                       for t in srv.breakers["predict"].transitions)
        finally:
            srv.stop()


class TestTenancy:
    def test_tenant_accepted_on_every_op(self, client):
        for op, params in (("predict", {"slice": [0, 1]}),
                           ("predict_many", {"slices": [[0, 1]]}),
                           ("whatif", {"n_stages": 1, "n_microbatches": 2}),
                           ("health", {})):
            resp = client.rpc({"op": op, "id": f"t-{op}",
                               "tenant": "team-a", "params": params})
            assert resp["ok"], (op, resp)

    def test_health_reports_version_and_tenancy(self, client):
        # health itself is unmetered, so put real work on the books first
        assert client.rpc({"op": "predict", "tenant": "metered",
                           "params": {"slice": [0, 1]}})["ok"]
        r = client.rpc({"op": "health"})["result"]
        assert r["protocol_version"] == PROTOCOL_VERSION
        assert r["replica_ordinal"] == 0
        ten = r["tenancy"]
        assert ten["limited"] is False  # module server has no tenant config
        assert ten["tenants"]["metered"]["admitted"] == 1
        assert set(ten["queues"]) == {"executor", "batcher"}

    def test_over_budget_tenant_is_rate_limited_inline(
            self, serving_runtime, tmp_path):
        tenancy = TenancyConfig(policies={
            "greedy": TenantPolicy(rate=0.001, burst=1.0)})
        srv = ReproServer(serving_runtime,
                          ServerConfig(port=0, workers=1, tenancy=tenancy),
                          journal_root=tmp_path)
        srv.start()
        try:
            c = Client(srv.address)
            ok = c.rpc({"op": "predict", "id": 1, "tenant": "greedy",
                        "params": {"slice": [0, 1]}})
            assert ok["ok"]  # the burst token
            limited = c.rpc({"op": "predict", "id": 2, "tenant": "greedy",
                             "params": {"slice": [0, 1]}})
            assert not limited["ok"] and limited["id"] == 2
            assert limited["error"]["code"] == "rate_limited"
            assert limited["retry_after_ms"] > 0
            # budgets are per tenant: everyone else is untouched
            assert c.rpc({"op": "predict", "id": 3, "tenant": "frugal",
                          "params": {"slice": [0, 1]}})["ok"]
            assert c.rpc({"op": "predict", "id": 4,
                          "params": {"slice": [0, 1]}})["ok"]  # v1 client
            # health is free (op cost 0) even for the limited tenant
            health = c.rpc({"op": "health", "tenant": "greedy"})
            assert health["ok"]
            snap = health["result"]["tenancy"]
            assert snap["limited"] is True
            assert snap["tenants"]["greedy"]["rate_limited"] == 1
            assert srv.counters.get("rate_limited") == 1
            c.close()
        finally:
            srv.stop()
        events = manifest.read_events(tmp_path)
        assert any(e["event"] == "rate_limited"
                   and e["tenant"] == "greedy" for e in events)
        closing = [e for e in events if e["event"] == "tenancy"]
        assert closing, "drain must journal the tenancy snapshot"
        assert closing[-1]["tenants"]["greedy"]["rate_limited"] == 1

    def test_concurrency_budget_counts_inflight(self, serving_runtime):
        tenancy = TenancyConfig(policies={
            "narrow": TenantPolicy(max_inflight=1)})
        srv = ReproServer(serving_runtime,
                          ServerConfig(port=0, workers=1, max_batch=1,
                                       batch_window_ms=50.0,
                                       tenancy=tenancy))
        srv.start()
        try:
            cs = [Client(srv.address) for _ in range(4)]
            for i, c in enumerate(cs):
                c.send_raw((json.dumps(
                    {"op": "predict", "id": i, "tenant": "narrow",
                     "params": {"slice": [0, 1]}}) + "\n").encode())
            responses = [c.read() for c in cs]
            for c in cs:
                c.close()
            assert all(r is not None for r in responses)
            rejected = [r for r in responses
                        if not r["ok"]
                        and r["error"]["code"] == "rate_limited"]
            served = [r for r in responses if r["ok"]]
            assert served, "the budget admits one at a time"
            for r in rejected:
                assert r["retry_after_ms"] > 0
        finally:
            srv.stop()


class TestSearchCache:
    def test_identical_search_is_served_from_cache(self, client, server):
        req = {"op": "search", "deadline_ms": 120_000,
               "params": {"stage_counts": [1, 2], "n_microbatches": 8}}
        before = server.counters.get("search_cache_hits")
        first = client.rpc({**req, "id": "s1"})
        assert first["ok"] and "cached" not in first["result"]
        second = client.rpc({**req, "id": "s2"})
        assert second["ok"] and second["result"]["cached"] is True
        assert server.counters.get("search_cache_hits") == before + 1
        assert second["result"]["best"] == first["result"]["best"]

    def test_different_question_misses(self, client, server):
        before = server.counters.get("search_cache_hits")
        resp = client.rpc({"op": "search", "id": "s3",
                           "deadline_ms": 120_000,
                           "params": {"stage_counts": [1, 2],
                                      "n_microbatches": 16}})
        assert resp["ok"] and "cached" not in resp["result"]
        assert server.counters.get("search_cache_hits") == before

    def test_reload_invalidates_via_generation(self, serving_runtime,
                                               tmp_path):
        from repro.predictors.serialize import save_predictor

        key_before = serving_runtime.search_key([1, 2], 4, "1f1b")
        gen = serving_runtime.generation
        # reload an equivalent ensemble: same members, fresh generation
        paths = tuple(
            str(save_predictor(m, tmp_path / f"m{i}.npz"))
            for i, m in enumerate(serving_runtime.ensemble.members))
        serving_runtime.reload(paths)
        assert serving_runtime.generation == gen + 1
        assert serving_runtime.search_key([1, 2], 4, "1f1b") != key_before


class TestLifecycle:
    def test_drain_refuses_new_work_but_health_still_answers(
            self, serving_runtime):
        srv = ReproServer(serving_runtime, ServerConfig(port=0, workers=1))
        srv.start()
        try:
            srv.draining = True
            c = Client(srv.address)
            resp = c.rpc({"op": "predict", "params": {"slice": [0, 1]}})
            assert resp["error"]["code"] == "draining"
            assert resp["retry_after_ms"] > 0
            health = c.rpc({"op": "health"})
            assert health["ok"]
            assert health["result"]["status"] == "draining"
            c.close()
        finally:
            srv.stop()

    def test_serve_forever_drains_on_request_stop(self, serving_runtime,
                                                  tmp_path):
        srv = ReproServer(serving_runtime, ServerConfig(port=0, workers=1),
                          journal_root=tmp_path)
        rc = []
        t = threading.Thread(
            target=lambda: rc.append(
                srv.serve_forever(install_signals=False)))
        t.start()
        for _ in range(100):
            if srv._started.is_set():
                break
            time.sleep(0.02)
        c = Client(srv.address)
        assert c.rpc({"op": "predict", "params": {"slice": [0, 1]}})["ok"]
        c.close()
        srv.request_stop()
        t.join(timeout=30)
        assert rc == [0]
        events = [e["event"] for e in manifest.read_events(tmp_path)]
        assert "serve_start" in events and "serve_ready" in events
        assert "serve_drain" in events and "serve_stop" in events

    def test_checkpoint_reload_in_place(self, serving_runtime, tmp_path):
        from repro.predictors.serialize import save_predictor

        path = save_predictor(serving_runtime.ensemble.members[0],
                              tmp_path / "member.npz")
        old_cfg = serving_runtime.config
        serving_runtime.config = dataclasses.replace(
            old_cfg, checkpoints=(str(path),))
        srv = ReproServer(serving_runtime,
                          ServerConfig(port=0, workers=1,
                                       reload_poll_s=0.05),
                          journal_root=tmp_path)
        srv.start()
        try:
            before = serving_runtime.ensemble
            time.sleep(0.1)
            save_predictor(serving_runtime.ensemble.members[0], path)
            deadline = time.monotonic() + 10
            while (srv.counters.get("reloads") == 0
                   and time.monotonic() < deadline):
                time.sleep(0.05)
            assert srv.counters.get("reloads") >= 1
            assert serving_runtime.ensemble is not before
            c = Client(srv.address)
            assert c.rpc({"op": "predict",
                          "params": {"slice": [0, 1]}})["ok"]
            c.close()
            events = [e["event"] for e in manifest.read_events(tmp_path)]
            assert "reload" in events
        finally:
            srv.stop()
            serving_runtime.config = old_cfg
