"""Tenancy layer: policies, token buckets, admission, fair queueing,
and deterministic retry jitter."""

from __future__ import annotations

import json
import threading

import pytest

from repro.serving.tenancy import (DEFAULT_OP_COSTS, DEFAULT_TENANT,
                                   AdmissionController, FairQueue,
                                   TenancyConfig, TenantPolicy, TokenBucket,
                                   jittered_retry_ms)


class FakeClock:
    def __init__(self):
        self.t = 100.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestTenantPolicy:
    def test_all_defaults_are_unlimited(self):
        p = TenantPolicy()
        assert p.rate == 0 and p.max_inflight == 0 and p.max_queued == 0
        assert p.weight == 1

    def test_op_costs_default_and_override(self):
        p = TenantPolicy()
        assert p.op_cost("search") == DEFAULT_OP_COSTS["search"]
        assert p.op_cost("health") == 0
        assert p.op_cost("unknown_op") == 1
        q = TenantPolicy(op_costs={"search": 20})
        assert q.op_cost("search") == 20
        assert q.op_cost("predict") == 1

    @pytest.mark.parametrize("kwargs", [
        {"rate": -1.0}, {"burst": -2.0}, {"max_inflight": -1},
        {"max_queued": -3}, {"weight": 0},
    ])
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TenantPolicy(**kwargs)

    def test_env_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_TENANT_RATE", "5.5")
        monkeypatch.setenv("REPRO_TENANT_INFLIGHT", "3")
        monkeypatch.setenv("REPRO_TENANT_SEARCH_COST", "16")
        p = TenantPolicy.from_env()
        assert p.rate == 5.5 and p.max_inflight == 3
        assert p.op_cost("search") == 16


class TestTenancyConfig:
    def test_unknown_tenant_gets_default_policy(self):
        cfg = TenancyConfig(policies={"a": TenantPolicy(rate=1.0)})
        assert cfg.policy("a").rate == 1.0
        assert cfg.policy("stranger").rate == 0.0

    def test_load_tenants_json(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text(json.dumps({
            "default": {"rate": 10, "weight": 2},
            "heavy": {"rate": 1, "burst": 8, "max_inflight": 1,
                      "op_costs": {"search": 8}},
        }))
        cfg = TenancyConfig.load(path)
        # the "default" entry re-bases the class unknown tenants get
        assert cfg.policy("anyone").rate == 10.0
        assert cfg.weight_of("anyone") == 2
        # named entries inherit omitted fields from the re-based default
        assert cfg.policy("heavy").rate == 1.0
        assert cfg.policy("heavy").weight == 2
        assert cfg.policy("heavy").op_cost("search") == 8

    def test_load_rejects_unknown_keys(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text('{"a": {"rrate": 3}}')
        with pytest.raises(ValueError, match="unknown policy key"):
            TenancyConfig.load(path)

    def test_load_rejects_non_object(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError):
            TenancyConfig.load(path)


class TestJitter:
    def test_deterministic_and_bounded(self):
        a = jittered_retry_ms(100.0, "shed", "t", "r1", 3)
        b = jittered_retry_ms(100.0, "shed", "t", "r1", 3)
        assert a == b
        assert 75.0 <= a < 125.0

    def test_distinct_keys_spread(self):
        hints = {jittered_retry_ms(100.0, "shed", "t", i, 0)
                 for i in range(50)}
        assert len(hints) > 25  # not in lockstep


class TestTokenBucket:
    def test_zero_rate_is_unlimited(self):
        b = TokenBucket(0.0)
        assert all(b.take(1000.0) == 0.0 for _ in range(100))

    def test_drain_and_refill(self):
        clock = FakeClock()
        b = TokenBucket(rate=2.0, burst=4.0, clock=clock)
        for _ in range(4):
            assert b.take(1.0) == 0.0
        wait = b.take(1.0)
        assert wait == pytest.approx(0.5)
        clock.advance(0.5)
        assert b.take(1.0) == 0.0

    def test_cost_above_capacity_charges_a_full_bucket(self):
        clock = FakeClock()
        b = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        assert b.take(8.0) == 0.0  # charges the full bucket, not free
        assert b.tokens == 0.0
        assert b.take(8.0) == pytest.approx(2.0)  # refill to capacity


class TestAdmission:
    def test_unlimited_config_admits_everything(self):
        adm = AdmissionController(TenancyConfig())
        assert not adm.limited
        for i in range(100):
            assert adm.admit("anyone", "search", i) is None
        snap = adm.snapshot()
        assert snap["anyone"]["admitted"] == 100

    def test_rate_limit_returns_jittered_hint(self):
        clock = FakeClock()
        cfg = TenancyConfig(policies={"t": TenantPolicy(rate=1.0,
                                                        burst=2.0)})
        adm = AdmissionController(cfg, clock=clock)
        assert adm.limited
        assert adm.admit("t", "predict", 0) is None
        assert adm.admit("t", "predict", 1) is None
        retry = adm.admit("t", "predict", 2)
        assert retry is not None and retry >= 0.75 * 1000.0 * 1.0
        assert adm.snapshot()["t"]["rate_limited"] == 1

    def test_concurrency_budget_and_release(self):
        cfg = TenancyConfig(policies={"t": TenantPolicy(max_inflight=2)})
        adm = AdmissionController(cfg)
        assert adm.admit("t", "predict") is None
        assert adm.admit("t", "predict") is None
        assert adm.admit("t", "predict") is not None  # over budget
        adm.release("t")
        assert adm.admit("t", "predict") is None
        snap = adm.snapshot()
        assert snap["t"]["over_concurrency"] == 1
        assert snap["t"]["inflight"] == 2

    def test_first_rate_limit_is_journaled(self, tmp_path):
        from repro.experiments.manifest import read_events

        cfg = TenancyConfig(policies={"t": TenantPolicy(rate=0.001,
                                                        burst=1.0)})
        adm = AdmissionController(cfg, journal_root=tmp_path)
        adm.admit("t", "predict", 0)
        adm.admit("t", "predict", 1)
        adm.admit("t", "predict", 2)
        events = [e for e in read_events(tmp_path)
                  if e["event"] == "rate_limited"]
        assert len(events) == 1  # only the first, not a line per reject
        assert events[0]["tenant"] == "t"

    def test_journal_snapshot(self, tmp_path):
        from repro.experiments.manifest import read_events

        adm = AdmissionController(TenancyConfig(), journal_root=tmp_path)
        adm.admit("x", "predict")
        adm.journal_snapshot({"executor": {"x": 1}})
        events = [e for e in read_events(tmp_path)
                  if e["event"] == "tenancy"]
        assert len(events) == 1
        assert events[0]["tenants"]["x"]["admitted"] == 1
        assert events[0]["queues"]["executor"] == {"x": 1}


class TestFairQueue:
    def test_single_tenant_is_fifo(self):
        q = FairQueue(16)
        for i in range(6):
            assert q.put_nowait(DEFAULT_TENANT, i)
        assert [q.get_nowait() for _ in range(6)] == list(range(6))

    def test_round_robin_across_tenants(self):
        q = FairQueue(32)
        for i in range(4):
            q.put_nowait("a", f"a{i}")
        q.put_nowait("b", "b0")
        # b's single item must not wait behind a's whole backlog
        order = [q.get_nowait() for _ in range(5)]
        assert order.index("b0") <= 1

    def test_weights_grant_share_per_round(self):
        q = FairQueue(32, weight_of=lambda t: {"a": 2, "b": 1}[t])
        for i in range(4):
            q.put_nowait("a", f"a{i}")
            q.put_nowait("b", f"b{i}")
        order = [q.get_nowait() for _ in range(8)]
        # first round: two of a, then one of b
        assert order[:3] == ["a0", "a1", "b0"]

    def test_global_and_per_tenant_caps(self):
        q = FairQueue(3, max_queued_of=lambda t: 2 if t == "small" else 0)
        assert q.put_nowait("small", 1)
        assert q.put_nowait("small", 2)
        assert not q.put_nowait("small", 3)  # per-tenant cap
        assert q.put_nowait("big", 1)
        assert not q.put_nowait("big", 2)  # global cap
        assert q.qsize() == 3
        assert q.depths() == {"big": 1, "small": 2}

    def test_close_drains_then_returns_none(self):
        q = FairQueue(8)
        q.put_nowait("a", 1)
        q.close()
        assert not q.put_nowait("a", 2)  # closed to new work
        assert q.get(timeout=1.0) == 1  # queued work still drains
        assert q.get(timeout=1.0) is None

    def test_get_timeout_returns_none(self):
        q = FairQueue(8)
        assert q.get(timeout=0.05) is None

    def test_blocking_get_wakes_on_put(self):
        q = FairQueue(8)
        got = []
        t = threading.Thread(target=lambda: got.append(q.get(timeout=5.0)))
        t.start()
        q.put_nowait("a", "item")
        t.join(timeout=5.0)
        assert got == ["item"]
