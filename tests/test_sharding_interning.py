"""Sharding-spec interning: identity, stable ids, thread safety, caches."""

from __future__ import annotations

import threading

import pytest

from repro.cluster import NVLINK, RTX_A5500, TEN_GBE, DeviceMesh
from repro.parallel.sharding import (REPLICATED, ShardingSpec, candidate_specs,
                                     intern_assignments, intern_spec,
                                     intern_stats, normalized_spec, spec_by_id,
                                     spec_id)


def mesh22():
    return DeviceMesh(2, 2, RTX_A5500, NVLINK, TEN_GBE).logical(2, 2)


class TestInterning:
    def test_factories_return_canonical_instance(self):
        assert ShardingSpec.replicated() is ShardingSpec.replicated()
        assert ShardingSpec.replicated() is REPLICATED
        assert ShardingSpec.shard(0, "dp") is ShardingSpec.shard(0, "dp")
        assert ShardingSpec.shard2(0, "dp", 1, "mp") is \
            ShardingSpec.shard2(0, "dp", 1, "mp")

    def test_intern_spec_of_loose_instance(self):
        loose = ShardingSpec(((0, "dp"),))
        canonical = intern_spec(loose)
        assert canonical is ShardingSpec.shard(0, "dp")
        assert canonical == loose

    def test_spec_id_roundtrip_and_stability(self):
        a = ShardingSpec.shard(1, "mp")
        sid = spec_id(a)
        assert spec_by_id(sid) is a
        assert spec_id(a) == sid  # stable across calls
        # a structurally equal loose instance resolves to the same id
        assert spec_id(ShardingSpec(((1, "mp"),))) == sid

    def test_invalid_assignments_raise_and_are_not_cached(self):
        bad = ((0, "dp"), (0, "mp"))  # dim mapped twice
        before = intern_stats()["specs"]
        with pytest.raises(ValueError):
            intern_assignments(bad)
        with pytest.raises(ValueError):  # still raises on retry
            intern_assignments(bad)
        assert intern_stats()["specs"] == before

    def test_thread_safe_reuse(self):
        """Concurrent interning of one tuple yields a single instance."""
        assignments = ((1, "dp"),)
        results: list[ShardingSpec] = []
        barrier = threading.Barrier(8)

        def work():
            barrier.wait()
            for _ in range(200):
                results.append(intern_assignments(assignments))

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(r) for r in results}) == 1
        assert results[0] is intern_assignments(assignments)


class TestNormalizedCache:
    def test_normalized_spec_is_interned_and_cached(self):
        mesh = mesh22()
        spec = ShardingSpec.shard(0, "dp")
        n1 = normalized_spec(spec, mesh)
        n2 = normalized_spec(spec, mesh)
        assert n1 is n2
        assert n1 == spec.normalized(mesh)

    def test_degenerate_axis_sharing(self):
        """Meshes with the same >1-axis pattern share normalizations."""
        m_a = DeviceMesh(1, 2, RTX_A5500, NVLINK, TEN_GBE).logical(2, 1)
        m_b = DeviceMesh(2, 2, RTX_A5500, NVLINK, TEN_GBE).logical(4, 1)
        spec = ShardingSpec.shard2(0, "dp", 1, "mp")
        assert normalized_spec(spec, m_a) is normalized_spec(spec, m_b)
        assert normalized_spec(spec, m_a).assignments == ((0, "dp"),)

    def test_candidate_specs_cached_and_interned(self):
        from repro.ir.graph import TensorSpec

        mesh = mesh22()
        t = TensorSpec((8, 16), "float32")
        c1 = candidate_specs(t, mesh)
        c2 = candidate_specs(t, mesh)
        assert c1 == c2
        assert c1 is not c2  # defensive copy per call
        for a, b in zip(c1, c2):
            assert a is b  # ... of the same interned instances
