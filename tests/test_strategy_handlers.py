"""Per-op handler registry: dispatch, cost properties, and the
registry-vs-legacy differential pin (bit-identical with topology off)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import PLATFORM1, PLATFORM2
from repro.ir import GraphBuilder
from repro.models import benchmark_config, build_model
from repro.parallel import (
    REPLICATED,
    ShardingStrategy,
    handler_for,
    legacy_node_strategies,
    node_strategies,
)
from repro.parallel.handlers import describe_handlers, iter_handlers


@pytest.fixture(scope="module")
def lv22():
    return PLATFORM2.mesh(3).logical(2, 2)


@pytest.fixture(scope="module")
def lv21():
    return PLATFORM2.mesh(2).logical(2, 1)


@pytest.fixture(scope="module")
def lv12():
    return PLATFORM2.mesh(2).logical(1, 2)


def _node(build):
    b = GraphBuilder("s")
    y = build(b)
    node = b.graph.nodes[y.id]
    return node, [b.graph.nodes[i].out for i in node.inputs]


def _strategy_key(s):
    return (s.name, s.out, s.ins, s.factor, s.comm_time)


# --------------------------------------------------------------------------
# dispatch
# --------------------------------------------------------------------------

class TestDispatch:
    def test_registry_is_populated(self):
        names = [h.name for h in iter_handlers()]
        assert "DotGeneralHandler" in names
        assert "DefaultHandler" in names
        assert len(names) == len(set(names))

    def test_describe_handlers_rows(self):
        rows = describe_handlers()
        assert all(len(r) == 3 for r in rows)
        assert any("dot_general" in keys for _, keys, _ in rows)

    @pytest.mark.parametrize("build,expected", [
        (lambda b: b.einsum_contract(b.input("x", (8, 16)),
                                     b.param("w", (16, 32)), (8, 32), 16),
         "DotGeneralHandler"),
        (lambda b: b.gather(b.param("t", (64, 32)), b.input("i", (8,))),
         "EmbeddingHandler"),
        (lambda b: b.add(b.input("x", (8, 32)), b.param("c", (32,))),
         "ElementwiseHandler"),
        (lambda b: b.reduce_sum(b.input("x", (8, 32)), (1,)),
         "ReductionHandler"),
        (lambda b: b.transpose(b.input("x", (8, 4, 32)), (0, 2, 1)),
         "TransposeHandler"),
        (lambda b: b.reshape(b.input("x", (8, 32)), (8, 4, 8)),
         "ReshapeHandler"),
        (lambda b: b.top_k(b.input("x", (8, 16)), 2)[0],
         "MoEDispatchHandler"),
    ])
    def test_op_routes_to_handler(self, build, expected):
        node, ins = _node(build)
        assert handler_for(node, ins).name == expected

    def test_high_rank_movement_goes_to_patch_embed(self):
        node, ins = _node(lambda b: b.transpose(
            b.input("x", (2, 3, 4, 3, 4, 8)), (0, 1, 3, 2, 4, 5)))
        assert handler_for(node, ins).name == "PatchEmbedHandler"
        node, ins = _node(lambda b: b.reshape(
            b.input("x", (2, 3, 4, 3, 4, 8)), (2, 9, 128)))
        assert handler_for(node, ins).name == "PatchEmbedHandler"

    def test_low_rank_movement_falls_through_patch_embed(self):
        node, ins = _node(lambda b: b.transpose(
            b.input("x", (8, 4, 32)), (0, 2, 1)))
        assert handler_for(node, ins).name == "TransposeHandler"


# --------------------------------------------------------------------------
# cost properties
# --------------------------------------------------------------------------

def _sample_nodes():
    yield _node(lambda b: b.einsum_contract(
        b.input("x", (8, 16)), b.param("w", (16, 32)), (8, 32), 16))
    yield _node(lambda b: b.add(b.input("x", (8, 32)), b.param("c", (32,))))
    yield _node(lambda b: b.reduce_sum(b.input("x", (8, 32)), (1,)))
    yield _node(lambda b: b.gather(b.param("t", (64, 32)),
                                   b.input("i", (8,))))
    yield _node(lambda b: b.transpose(b.input("x", (8, 4, 32)), (0, 2, 1)))


class TestCostProperties:
    def test_costs_well_formed(self, lv22):
        for node, ins in _sample_nodes():
            for s in node_strategies(node, ins, lv22):
                assert isinstance(s, ShardingStrategy)
                assert s.factor >= 1
                assert s.comm_time >= 0.0
                assert s.memory_bytes == pytest.approx(
                    node.out.nbytes / s.out.shard_factor(lv22))

    def test_replicated_memory_is_full_tensor(self, lv22):
        for node, ins in _sample_nodes():
            rep = next(s for s in node_strategies(node, ins, lv22)
                       if s.out == REPLICATED)
            assert rep.memory_bytes == node.out.nbytes

    def test_sharded_memory_smaller_than_replicated(self, lv22):
        node, ins = _node(lambda b: b.einsum_contract(
            b.input("x", (8, 16)), b.param("w", (16, 32)), (8, 32), 16))
        strats = node_strategies(node, ins, lv22)
        rep = next(s for s in strats if s.out == REPLICATED)
        for s in strats:
            if s.out != REPLICATED and s.out.shard_factor(lv22) > 1:
                assert s.memory_bytes < rep.memory_bytes

    def test_row_parallel_comm_grows_with_size(self, lv12):
        def row_comm(n):
            node, ins = _node(lambda b: b.einsum_contract(
                b.input("x", (8, 16)), b.param("w", (16, n)), (8, n), 16))
            return next(s for s in node_strategies(node, ins, lv12)
                        if "row@mp" in s.name).comm_time
        assert row_comm(64) > row_comm(32) > 0

    def test_cross_node_allreduce_pricier_than_intra(self):
        # mesh2 (one node, NVLink) vs mesh3 arranged so mp crosses nodes
        def row_comm(lm):
            node, ins = _node(lambda b: b.einsum_contract(
                b.input("x", (8, 16)), b.param("w", (16, 64)), (8, 64), 16))
            return next(s for s in node_strategies(node, ins, lm)
                        if "row@mp" in s.name).comm_time
        intra = row_comm(PLATFORM2.mesh(2).logical(1, 2))
        inter = row_comm(PLATFORM2.mesh(3).logical(1, 4))
        assert inter > intra


# --------------------------------------------------------------------------
# registry vs legacy differential (topology off: bit-identical)
# --------------------------------------------------------------------------

def _meshes():
    out = []
    for plat in (PLATFORM1, PLATFORM2):
        for mi in plat.mesh_indices():
            mesh = plat.mesh(mi)
            dp = 1
            while dp <= mesh.num_devices:
                if mesh.num_devices % dp == 0:
                    out.append(mesh.logical(dp, mesh.num_devices // dp))
                dp *= 2
    return out


class TestDifferential:
    @pytest.mark.parametrize("family", ["gpt", "moe", "bert", "vit"])
    def test_models_bit_identical(self, family):
        g = build_model(benchmark_config(family, n_layers=2)).full_graph()
        for lm in _meshes():
            assert not lm.topo_aware
            for node in g.nodes:
                ins = [g.nodes[i].out for i in node.inputs]
                reg = [_strategy_key(s)
                       for s in node_strategies(node, ins, lm)]
                leg = [_strategy_key(s)
                       for s in legacy_node_strategies(node, ins, lm)]
                assert reg == leg, (family, node.op, lm.dp, lm.mp)

    @settings(max_examples=60, deadline=None)
    @given(b=st.integers(1, 4).map(lambda x: 2 ** x),
           k=st.integers(1, 4).map(lambda x: 2 ** x),
           n=st.integers(1, 4).map(lambda x: 2 ** x))
    def test_matmul_shapes_bit_identical(self, b, k, n):
        lm = PLATFORM2.mesh(3).logical(2, 2)
        node, ins = _node(lambda bld: bld.einsum_contract(
            bld.input("x", (b, k)), bld.param("w", (k, n)), (b, n), k))
        reg = [_strategy_key(s) for s in node_strategies(node, ins, lm)]
        leg = [_strategy_key(s) for s in legacy_node_strategies(node, ins, lm)]
        assert reg == leg

    @settings(max_examples=40, deadline=None)
    @given(shape=st.lists(st.integers(1, 3).map(lambda x: 2 ** x),
                          min_size=1, max_size=4).map(tuple))
    def test_elementwise_shapes_bit_identical(self, shape):
        lm = PLATFORM2.mesh(3).logical(2, 2)
        node, ins = _node(lambda bld: bld.add(
            bld.input("x", shape), bld.input("y", shape)))
        reg = [_strategy_key(s) for s in node_strategies(node, ins, lm)]
        leg = [_strategy_key(s) for s in legacy_node_strategies(node, ins, lm)]
        assert reg == leg
