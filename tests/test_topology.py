"""Topology-aware pricing: link paths, axis classification, the gated
search space, and the multi-axis reshard cost regression."""

import pytest

from repro.cluster import PLATFORM1, PLATFORM2
from repro.cluster.collectives import allgather_time, allreduce_time
from repro.cluster.gpu import RTX_A5500
from repro.cluster.mesh import DeviceMesh, topology_enabled
from repro.cluster.network import (NVLINK, PCIE4, TEN_GBE, LinkHop, LinkPath,
                                   single_link_path)
from repro.ir import GraphBuilder, TensorSpec
from repro.models import benchmark_config, build_model
from repro.parallel import ShardingSpec, node_strategies, optimize_stage
from repro.parallel.resharding import reshard_time
from repro.parallel.sharding import REPLICATED


@pytest.fixture()
def topo_on(monkeypatch):
    monkeypatch.setenv("REPRO_TOPO", "on")


def _node(build):
    b = GraphBuilder("s")
    y = build(b)
    node = b.graph.nodes[y.id]
    return node, [b.graph.nodes[i].out for i in node.inputs]


# --------------------------------------------------------------------------
# LinkPath pricing units
# --------------------------------------------------------------------------

class TestLinkPath:
    def test_alpha_sums_beta_bottlenecks(self):
        p = LinkPath("r", (LinkHop(NVLINK), LinkHop(PCIE4),
                           LinkHop(TEN_GBE, sharing=2)))
        assert p.alpha == NVLINK.alpha + PCIE4.alpha + TEN_GBE.alpha
        assert p.beta == TEN_GBE.beta / 2
        assert p.bottleneck.link is TEN_GBE

    def test_transfer_time_uses_bottleneck(self):
        p = LinkPath("r", (LinkHop(NVLINK), LinkHop(TEN_GBE)))
        n = 1 << 20
        assert p.transfer_time(n) == pytest.approx(
            p.alpha + n / TEN_GBE.beta)
        assert p.transfer_time(0) == 0.0

    def test_sharing_divides_bandwidth(self):
        lone = LinkPath("a", (LinkHop(TEN_GBE),))
        shared = LinkPath("b", (LinkHop(TEN_GBE, sharing=2),))
        n = 1 << 20
        assert shared.transfer_time(n) > lone.transfer_time(n)
        with pytest.raises(ValueError):
            LinkHop(TEN_GBE, sharing=0)
        with pytest.raises(ValueError):
            LinkPath("empty", ())

    def test_single_link_path_prices_like_link(self):
        p = single_link_path(NVLINK)
        for n in (0, 1, 1 << 16, 1 << 24):
            assert p.transfer_time(n) == NVLINK.transfer_time(n)

    def test_collectives_accept_paths(self):
        p = LinkPath("r", (LinkHop(NVLINK), LinkHop(TEN_GBE)))
        n = 1 << 20
        assert allreduce_time(p, n, 4) > allreduce_time(NVLINK, n, 4)
        assert allreduce_time(single_link_path(NVLINK), n, 4) == \
            allreduce_time(NVLINK, n, 4)

    def test_str_shows_hops_and_sharing(self):
        p = LinkPath("r", (LinkHop(NVLINK), LinkHop(PCIE4),
                           LinkHop(TEN_GBE, sharing=2)))
        assert str(p) == "nvlink+pcie4+10gbe/2"


# --------------------------------------------------------------------------
# axis link classification (satellite: mp == gpus_per_node multi-node case
# and non-dividing factorizations)
# --------------------------------------------------------------------------

#: (platform, mesh index, dp, mp) -> expected (dp crosses nodes, mp crosses)
GRID = [
    (PLATFORM1, 1, 1, 1, False, False),
    (PLATFORM1, 2, 2, 1, False, False),
    (PLATFORM1, 2, 1, 2, False, False),
    (PLATFORM2, 1, 1, 1, False, False),
    (PLATFORM2, 2, 2, 1, False, False),
    (PLATFORM2, 2, 1, 2, False, False),
    (PLATFORM2, 3, 4, 1, True, False),   # dp strides whole nodes
    (PLATFORM2, 3, 2, 2, True, False),   # mp == gpus_per_node, dp x-node
    (PLATFORM2, 3, 1, 4, True, True),    # mp itself spans both nodes
]


class TestAxisClassification:
    @pytest.mark.parametrize("plat,mi,dp,mp,dp_x,mp_x", GRID)
    def test_table2_factorizations(self, plat, mi, dp, mp, dp_x, mp_x):
        mesh = plat.mesh(mi)
        lm = mesh.logical(dp, mp)
        assert (lm.dp_link is mesh.inter_link) == dp_x
        assert (lm.mp_link is mesh.inter_link) == mp_x

    def test_non_dividing_mp_straddles_node(self):
        # 2 nodes x 3 GPUs: an mp=2 group cannot divide the node width, so
        # one of its pairs straddles the node boundary and must be priced
        # on the inter-node fabric (the seed's device-count test got this
        # wrong, calling it intra-node).
        mesh = DeviceMesh(2, 3, RTX_A5500, NVLINK, TEN_GBE)
        lm = mesh.logical(3, 2)
        assert lm.mp_link is TEN_GBE
        assert lm.dp_link is TEN_GBE
        # dividing factorization on the same mesh stays intra-node
        lm = mesh.logical(2, 3)
        assert lm.mp_link is NVLINK
        assert lm.dp_link is TEN_GBE

    def test_paths_absent_by_default(self):
        lm = PLATFORM2.mesh(3).logical(2, 2)
        assert not topology_enabled()
        assert not lm.topo_aware
        assert lm.dp_path is None and lm.mp_path is None
        assert not lm.key().endswith("-topo")


# --------------------------------------------------------------------------
# topology-aware gate
# --------------------------------------------------------------------------

class TestTopoGate:
    def test_paths_present_when_enabled(self, topo_on):
        mesh = PLATFORM2.mesh(3)
        lm = mesh.logical(2, 2)
        assert lm.topo_aware
        assert str(lm.mp_path) == "nvlink"            # inside one node
        assert str(lm.dp_path) == "pcie4+10gbe/2"     # NIC shared by 2 rings
        assert lm.key().endswith("-topo")

    def test_mp_spanning_nodes_includes_intra_leg(self, topo_on):
        lm = PLATFORM2.mesh(3).logical(1, 4)
        assert str(lm.mp_path) == "nvlink+pcie4+10gbe"

    def test_cross_node_axis_priced_up(self, topo_on):
        mesh = PLATFORM2.mesh(3)
        lm = mesh.logical(2, 2)
        n = 1 << 20
        flat = allreduce_time(lm.dp_link, n, 2)
        routed = allreduce_time(lm.dp_path, n, 2)
        assert routed > flat
        # the intra-node axis is unchanged
        assert allreduce_time(lm.mp_path, n, 2) == \
            allreduce_time(lm.mp_link, n, 2)

    def test_topo_only_strategies_gated(self, topo_on):
        node, ins = _node(lambda b: b.gather(b.param("t", (64, 32)),
                                             b.input("i", (8,))))
        mesh = PLATFORM2.mesh(3)
        on = {s.name for s in node_strategies(node, ins, mesh.logical(1, 4))}
        assert "gather[vocab@mp]" in on

    def test_flat_space_has_no_topo_strategies(self):
        node, ins = _node(lambda b: b.gather(b.param("t", (64, 32)),
                                             b.input("i", (8,))))
        lm = PLATFORM2.mesh(3).logical(1, 4)
        assert not any("vocab" in s.name
                       for s in node_strategies(node, ins, lm))

    def test_moe_dispatch_strategy_appears(self, topo_on):
        node, ins = _node(lambda b: b.einsum_contract(
            b.input("d", (64, 8)), b.input("x", (64, 32)),
            (4, 16, 32), 64))
        lm = PLATFORM2.mesh(3).logical(1, 4)
        names = {s.name for s in node_strategies(node, ins, lm)}
        assert "dot[dispatch@mp]" in names
        disp = next(s for s in node_strategies(node, ins, lm)
                    if s.name == "dot[dispatch@mp]")
        assert disp.comm_time > 0           # the token all-to-all
        assert disp.factor == 4

    def test_committed_plan_changes_on_multinode_platform(self, monkeypatch):
        g = build_model(benchmark_config("moe", n_layers=2)).full_graph()
        mesh = PLATFORM2.mesh(3)
        monkeypatch.delenv("REPRO_TOPO", raising=False)
        off = optimize_stage(g, mesh.logical(2, 2))
        monkeypatch.setenv("REPRO_TOPO", "on")
        on = optimize_stage(g, mesh.logical(2, 2))
        off_names = [a.strategy.name for a in off.assignments]
        on_names = [a.strategy.name for a in on.assignments]
        assert off_names != on_names


# --------------------------------------------------------------------------
# multi-axis reshard pricing (satellite: progressive reassembly)
# --------------------------------------------------------------------------

class TestMultiAxisReshard:
    def test_two_axis_gather_priced_progressively(self):
        lm = PLATFORM2.mesh(3).logical(2, 2)
        t = TensorSpec((8, 32), "float32")
        src = ShardingSpec.shard2(0, "dp", 1, "mp")
        n = t.nbytes
        corrected = reshard_time(src, REPLICATED, t, lm)
        # underpriced: both gathers charged on the pre-growth shard size —
        # this misses that the second all-gather moves a tensor already
        # grown by the first gather's axis; the corrected cost is strictly
        # larger
        underpriced = (allgather_time(lm.axis_link("dp"), n / 2, 2)
                       + allgather_time(lm.axis_link("mp"), n / 2, 2))
        assert corrected > underpriced
        # ...and strictly smaller than charging every gather at final size
        overpriced = (allgather_time(lm.axis_link("dp"), n, 2)
                      + allgather_time(lm.axis_link("mp"), n, 2))
        assert corrected < overpriced

    def test_single_axis_unchanged(self):
        lm = PLATFORM2.mesh(2).logical(2, 1)
        t = TensorSpec((8, 32), "float32")
        src = ShardingSpec.shard(0, "dp")
        assert reshard_time(src, REPLICATED, t, lm) == pytest.approx(
            allgather_time(lm.axis_link("dp"), t.nbytes, 2))

    def test_kept_axis_not_regathered(self):
        lm = PLATFORM2.mesh(3).logical(2, 2)
        t = TensorSpec((8, 32), "float32")
        src = ShardingSpec.shard2(0, "dp", 1, "mp")
        dst = ShardingSpec.shard(0, "dp")
        # only the mp axis is dropped; its gather runs on the dp-sharded
        # tensor
        assert reshard_time(src, dst, t, lm) == pytest.approx(
            allgather_time(lm.axis_link("mp"), t.nbytes / 2, 2))
