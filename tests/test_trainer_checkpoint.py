"""Trainer robustness: divergence guard, atomic checkpointing, and
interrupted-resume bit-identity."""

from __future__ import annotations

import numpy as np
import pytest

import repro.predictors.trainer as trainer_mod
from repro import faults
from repro.predictors import Normalizer, TrainConfig, split_dataset, train_model
from repro.predictors.base import build_model


@pytest.fixture(scope="module")
def splits(tiny_corpus):
    return split_dataset(tiny_corpus, 0.6, 0.15, seed=0)


@pytest.fixture(scope="module")
def norm(splits):
    return Normalizer.fit(splits.train)


def _cfg(**overrides):
    base = dict(epochs=8, patience=8, batch_size=8, seed=3)
    base.update(overrides)
    return TrainConfig(**base)


def _train(splits, norm, cfg, **kwargs):
    model = build_model("gcn", seed=cfg.seed)
    result = train_model(model, splits.train, splits.val, norm, cfg, **kwargs)
    return model, result


class _StopAfter(Exception):
    """Simulated kill -9 between epochs."""


def _interrupt_after(monkeypatch, n_saves):
    """Kill training right after its ``n_saves``-th epoch checkpoint."""
    real = trainer_mod._save_checkpoint
    count = {"n": 0}

    def wrapper(*args, **kwargs):
        real(*args, **kwargs)
        if not kwargs.get("done"):
            count["n"] += 1
            if count["n"] >= n_saves:
                raise _StopAfter()

    monkeypatch.setattr(trainer_mod, "_save_checkpoint", wrapper)


class TestDivergenceGuard:
    def test_injected_nan_stops_and_flags(self, splits, norm, monkeypatch):
        """Without the guard a NaN loss trains through the whole budget
        (NaN comparisons defeat early stopping); with it, training stops
        at the diverged epoch and restores the best snapshot."""
        monkeypatch.setenv(faults.ENV_VAR, "train_diverge:at=3")
        model, result = _train(splits, norm, _cfg(epochs=20, patience=20))
        assert result.diverged
        assert result.epochs_run == 4  # epochs 0..3, then the guard fired
        assert np.isnan(result.train_loss[-1])
        assert not result.stopped_early
        # restored weights reproduce the best (pre-divergence) val loss
        from repro.predictors import evaluate_loss, make_batches

        val_batches = make_batches(splits.val, norm, 8)
        best = min(v for v in result.val_loss if np.isfinite(v))
        assert evaluate_loss(model, val_batches, "mae") == pytest.approx(
            best, rel=1e-5)

    def test_clean_run_not_flagged(self, splits, norm, monkeypatch):
        monkeypatch.delenv(faults.ENV_VAR, raising=False)
        _, result = _train(splits, norm, _cfg())
        assert not result.diverged


class TestCheckpointResume:
    def test_interrupted_resume_bit_identical(self, splits, norm, tmp_path,
                                              monkeypatch):
        """Kill training after 3 epochs; the resumed run must reproduce
        the uninterrupted run's losses, decisions, and weights exactly
        (RNG, Adam moments, and scheduler state all replay)."""
        cfg = _cfg(epochs=7)
        ref_model, ref = _train(splits, norm, cfg)

        ckpt = tmp_path / "run.npz"
        _interrupt_after(monkeypatch, 3)
        with pytest.raises(_StopAfter):
            _train(splits, norm, cfg, checkpoint_path=ckpt)
        monkeypatch.undo()

        res_model, resumed = _train(splits, norm, cfg, checkpoint_path=ckpt,
                                    resume=True)
        assert resumed.train_loss == ref.train_loss  # == : bit-identical
        assert resumed.val_loss == ref.val_loss
        assert resumed.best_epoch == ref.best_epoch
        assert resumed.epochs_run == ref.epochs_run
        assert resumed.stopped_early == ref.stopped_early
        ref_w, res_w = ref_model.state_dict(), res_model.state_dict()
        assert set(ref_w) == set(res_w)
        assert all(np.array_equal(ref_w[k], res_w[k]) for k in ref_w)

    def test_resume_of_finished_run_replays_result(self, splits, norm,
                                                   tmp_path):
        """Resuming a *completed* checkpoint must not train past the
        recorded stop point — it reproduces the recorded result."""
        cfg = _cfg(epochs=5)
        ckpt = tmp_path / "done.npz"
        ref_model, ref = _train(splits, norm, cfg, checkpoint_path=ckpt)
        res_model, resumed = _train(splits, norm, cfg, checkpoint_path=ckpt,
                                    resume=True)
        assert resumed.train_loss == ref.train_loss
        assert resumed.epochs_run == ref.epochs_run
        ref_w = ref_model.state_dict()
        assert all(np.array_equal(ref_w[k], v)
                   for k, v in res_model.state_dict().items())

    def test_resume_without_checkpoint_is_fresh_start(self, splits, norm,
                                                      tmp_path):
        cfg = _cfg(epochs=4)
        _, ref = _train(splits, norm, cfg)
        _, result = _train(splits, norm, cfg,
                           checkpoint_path=tmp_path / "absent.npz",
                           resume=True)
        assert result.train_loss == ref.train_loss

    def test_torn_checkpoint_ignored_with_warning(self, splits, norm,
                                                  tmp_path):
        """A truncated checkpoint (crash mid-write without the atomic
        protocol) must mean fresh start, not a crash or silent garbage."""
        cfg = _cfg(epochs=4)
        ckpt = tmp_path / "torn.npz"
        ckpt.write_bytes(b"PK\x03\x04 definitely not a complete zip")
        with pytest.warns(UserWarning, match="unreadable checkpoint"):
            _, result = _train(splits, norm, cfg, checkpoint_path=ckpt,
                               resume=True)
        _, ref = _train(splits, norm, cfg)
        assert result.train_loss == ref.train_loss

    def test_mismatched_run_refuses_resume(self, splits, norm, tmp_path):
        ckpt = tmp_path / "other.npz"
        _train(splits, norm, _cfg(epochs=4), checkpoint_path=ckpt)
        with pytest.raises(ValueError, match="different training run"):
            _train(splits, norm, _cfg(epochs=4, seed=9),
                   checkpoint_path=ckpt, resume=True)

    def test_no_tmp_debris_left_behind(self, splits, norm, tmp_path):
        ckpt = tmp_path / "run.npz"
        _train(splits, norm, _cfg(epochs=3), checkpoint_path=ckpt)
        assert ckpt.is_file()
        assert list(tmp_path.glob("*.tmp*")) == []

    def test_checkpoint_every_n(self, splits, norm, tmp_path, monkeypatch):
        """checkpoint_every=2 halves the save cadence; resume still
        reproduces the reference run from the coarser checkpoint."""
        saves = []
        real = trainer_mod._save_checkpoint
        monkeypatch.setattr(
            trainer_mod, "_save_checkpoint",
            lambda *a, **k: (saves.append(k["epoch_next"]), real(*a, **k))[1])
        cfg = _cfg(epochs=6)
        _, ref = _train(splits, norm, cfg, checkpoint_path=tmp_path / "c.npz",
                        checkpoint_every=2)
        assert saves[:-1] == [2, 4, 6]  # epoch checkpoints, then the done-save
        monkeypatch.undo()
        _, resumed = _train(splits, norm, cfg,
                            checkpoint_path=tmp_path / "c.npz", resume=True)
        assert resumed.train_loss == ref.train_loss


class TestFacadeCheckpointing:
    def test_latency_predictor_fit_resumes(self, splits, tmp_path,
                                           monkeypatch):
        from repro.predictors import LatencyPredictor

        cfg = _cfg(epochs=6)
        ref = LatencyPredictor("gcn", seed=3)
        ref_result = ref.fit(splits.train, splits.val, cfg)

        ckpt = tmp_path / "fit.npz"
        _interrupt_after(monkeypatch, 2)
        lp = LatencyPredictor("gcn", seed=3)
        with pytest.raises(_StopAfter):
            lp.fit(splits.train, splits.val, cfg, checkpoint_path=ckpt)
        monkeypatch.undo()
        lp = LatencyPredictor("gcn", seed=3)
        resumed = lp.fit(splits.train, splits.val, cfg, checkpoint_path=ckpt,
                         resume=True)
        assert resumed.train_loss == ref_result.train_loss
        pred_ref = ref.predict_samples(splits.test)
        pred_res = lp.predict_samples(splits.test)
        assert np.array_equal(pred_ref, pred_res)


class TestFingerprintArchitecture:
    def test_changed_architecture_refuses_resume(self, splits, norm,
                                                 tmp_path):
        """The fingerprint includes parameter names + shapes: resuming
        with a different model architecture must raise the intended
        "different training run" error up front, not die late with a
        shape mismatch inside load_state_dict."""
        cfg = _cfg(epochs=4)
        ckpt = tmp_path / "arch.npz"
        _train(splits, norm, cfg, checkpoint_path=ckpt)
        narrow = build_model("gcn", seed=cfg.seed, dim=64)
        with pytest.raises(ValueError, match="different training run"):
            train_model(narrow, splits.train, splits.val, norm, cfg,
                        checkpoint_path=ckpt, resume=True)

    def test_same_architecture_still_resumes(self, splits, norm, tmp_path):
        cfg = _cfg(epochs=4)
        ckpt = tmp_path / "same.npz"
        _, ref = _train(splits, norm, cfg, checkpoint_path=ckpt)
        _, resumed = _train(splits, norm, cfg, checkpoint_path=ckpt,
                            resume=True)
        assert resumed.train_loss == ref.train_loss


class TestStaleTmpReaper:
    def _dead_pid(self):
        import os

        pid = 2 ** 22 - 17  # far above any default pid_max allocation
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return pid
        except PermissionError:
            pass
        pytest.skip("could not find a guaranteed-dead pid")

    def test_dead_writer_tmp_reaped_on_save(self, splits, norm, tmp_path):
        ckpt = tmp_path / "run.npz"
        orphan = tmp_path / f"run.npz.tmp{self._dead_pid()}"
        orphan.write_bytes(b"stranded by a crashed writer")
        alien = tmp_path / "run.npz.tmpNOTAPID"
        alien.write_bytes(b"not ours to judge")
        _train(splits, norm, _cfg(epochs=2), checkpoint_path=ckpt)
        assert not orphan.exists()   # dead writer's debris swept
        assert alien.exists()        # malformed suffix left alone
        assert ckpt.is_file()

    def test_live_writer_tmp_left_alone(self, splits, norm, tmp_path):
        """pid 1 is always alive (and not us): its tmp must survive."""
        ckpt = tmp_path / "run.npz"
        live = tmp_path / "run.npz.tmp1"
        live.write_bytes(b"concurrent writer still at work")
        _train(splits, norm, _cfg(epochs=2), checkpoint_path=ckpt)
        assert live.exists()

    def test_reaped_on_load_too(self, splits, norm, tmp_path):
        ckpt = tmp_path / "run.npz"
        _train(splits, norm, _cfg(epochs=2), checkpoint_path=ckpt)
        orphan = tmp_path / f"run.npz.tmp{self._dead_pid()}"
        orphan.write_bytes(b"stranded")
        _, _ = _train(splits, norm, _cfg(epochs=2), checkpoint_path=ckpt,
                      resume=True)
        assert not orphan.exists()
