"""Unit tests for the gray-box trust layer (repro.predictors.trust)."""

import numpy as np
import pytest

from repro.predictors.base import LatencyPredictor
from repro.predictors.trainer import TrainConfig
from repro.predictors.trust import (
    DEFAULT_ALPHA,
    EnsemblePredictor,
    FeatureStats,
    GuardedPrediction,
    TrustConfig,
    TrustStats,
    assess,
)

TRAIN = TrainConfig(epochs=4, patience=4, batch_size=8, seed=0)


def _split(corpus):
    return list(corpus[:-2]), list(corpus[-2:])


# ----------------------------------------------------------------- config
class TestTrustConfig:
    def test_defaults_disabled(self, monkeypatch):
        for var in ("REPRO_TRUST", "REPRO_TRUST_ENSEMBLE",
                    "REPRO_TRUST_ALPHA", "REPRO_TRUST_CV",
                    "REPRO_TRUST_OOD", "REPRO_TRUST_BUDGET"):
            monkeypatch.delenv(var, raising=False)
        cfg = TrustConfig.from_env()
        assert not cfg.enabled
        assert cfg.ensemble_size == 3
        assert cfg.alpha == DEFAULT_ALPHA
        assert cfg.budget == 0.0

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRUST", "on")
        monkeypatch.setenv("REPRO_TRUST_ENSEMBLE", "5")
        monkeypatch.setenv("REPRO_TRUST_ALPHA", "4.5")
        monkeypatch.setenv("REPRO_TRUST_BUDGET", "120")
        cfg = TrustConfig.from_env()
        assert cfg.enabled and cfg.ensemble_size == 5
        assert cfg.alpha == 4.5 and cfg.budget == 120.0

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            TrustConfig(ensemble_size=0)
        with pytest.raises(ValueError):
            TrustConfig(alpha=1.0)
        with pytest.raises(ValueError):
            TrustConfig(budget=-1.0)

    def test_bad_env_number_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRUST_ALPHA", "wide")
        with pytest.raises(ValueError):
            TrustConfig.from_env()


# ------------------------------------------------------------------ guards
class TestAssess:
    CFG = TrustConfig(enabled=True)

    def test_trusted_inside_envelope(self):
        g = assess(raw=1.0, std=0.01, ood=0.0, analytical=1.5, cfg=self.CFG)
        assert g.trusted and g.value == 1.0
        assert g.lower == pytest.approx(1.5 / DEFAULT_ALPHA)
        assert g.upper == pytest.approx(1.5 * DEFAULT_ALPHA)

    def test_out_of_bounds_clamped(self):
        g = assess(raw=1000.0, std=0.0, ood=0.0, analytical=1.0, cfg=self.CFG)
        assert g.verdict == "out_of_bounds"
        assert g.value == pytest.approx(DEFAULT_ALPHA)  # clamped to upper
        g = assess(raw=1e-6, std=0.0, ood=0.0, analytical=1.0, cfg=self.CFG)
        assert g.verdict == "out_of_bounds"
        assert g.value == pytest.approx(1.0 / DEFAULT_ALPHA)

    def test_uncertain_when_ensemble_disagrees(self):
        g = assess(raw=1.0, std=0.9, ood=0.0, analytical=1.0, cfg=self.CFG)
        assert g.verdict == "uncertain"

    def test_ood_takes_precedence_over_uncertainty(self):
        g = assess(raw=1.0, std=0.9, ood=0.8, analytical=1.0, cfg=self.CFG)
        assert g.verdict == "ood"

    def test_invalid_values_fall_back_to_analytical(self):
        for raw in (float("nan"), float("inf"), -1.0, 0.0):
            g = assess(raw=raw, std=0.0, ood=0.0, analytical=2.0,
                       cfg=self.CFG)
            assert g.verdict == "invalid"
            assert g.value == pytest.approx(2.0)
            assert np.isfinite(g.value)

    def test_stats_accounting(self):
        stats = TrustStats()
        stats.record(assess(1.0, 0.0, 0.0, 1.0, self.CFG))
        stats.record(assess(1000.0, 0.0, 0.0, 1.0, self.CFG))
        assert stats.total == 2 and stats.trusted == 1
        assert stats.out_of_bounds == 1 and stats.suspect == 1
        other = TrustStats(retrained=2, budget_spent=3.0)
        stats.merge(other)
        assert stats.retrained == 2 and stats.budget_spent == 3.0
        d = stats.as_dict()
        assert d["total"] == 2 and d["trusted"] == 1
        assert "suspect" in stats.summary() or "trusted" in stats.summary()


# ----------------------------------------------------------- OOD detection
class TestFeatureStats:
    def test_in_distribution_scores_zero(self, tiny_corpus):
        stats = FeatureStats.fit([s.graph for s in tiny_corpus])
        for s in tiny_corpus:
            assert stats.ood_score(s.graph) == 0.0

    def test_out_of_distribution_flagged(self, tiny_corpus, toy_graph):
        stats = FeatureStats.fit([s.graph for s in tiny_corpus])
        # the toy chain is nothing like a profiled GPT stage: tiny
        # tensors, alien size — the score must exceed any sane threshold
        assert stats.ood_score(toy_graph) > 0.25

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            FeatureStats.fit([])


# -------------------------------------------------------------- ensembles
class TestEnsemble:
    def test_size_one_matches_single_predictor(self, tiny_corpus):
        train, val = _split(tiny_corpus)
        single = LatencyPredictor("gcn", seed=0)
        single.fit(train, val, TRAIN)
        ens = EnsemblePredictor("gcn", seed=0, size=1)
        fit = ens.fit(train, val, TRAIN)
        graphs = [s.graph for s in tiny_corpus]
        mean, std = ens.predict_graphs(graphs)
        np.testing.assert_array_equal(mean, single.predict_graphs(graphs))
        assert np.all(std == 0.0)
        assert fit.retrained == 0 and not fit.degraded

    def test_members_are_independent(self, tiny_corpus):
        train, val = _split(tiny_corpus)
        ens = EnsemblePredictor("gcn", seed=0, size=3)
        ens.fit(train, val, TRAIN)
        graphs = [s.graph for s in tiny_corpus]
        mean, std = ens.predict_graphs(graphs)
        assert mean.shape == std.shape == (len(graphs),)
        # differently-seeded fits cannot agree bit-for-bit everywhere
        assert float(std.max()) > 0.0
        assert ens.feature_stats is not None

    def test_divergence_retrains_with_fresh_seed(self, tiny_corpus,
                                                 monkeypatch):
        train, val = _split(tiny_corpus)
        monkeypatch.setenv("REPRO_FAULTS", "train_diverge:at=2")
        ens = EnsemblePredictor("gcn", seed=0, size=1)
        fit = ens.fit(train, val, TRAIN)
        assert fit.retrained == 1 and fit.dropped == 0
        assert not fit.degraded
        assert len(ens.members) == 1
        mean, _ = ens.predict_graphs([s.graph for s in tiny_corpus])
        assert np.all(np.isfinite(mean))

    def test_persistent_divergence_degrades(self, tiny_corpus, monkeypatch):
        train, val = _split(tiny_corpus)
        # attempts=* keeps firing on the retraining pass too
        monkeypatch.setenv("REPRO_FAULTS", "train_diverge:at=2,attempts=*")
        ens = EnsemblePredictor("gcn", seed=0, size=1)
        fit = ens.fit(train, val, TRAIN)
        assert fit.retrained == 1 and fit.dropped == 1
        assert fit.degraded
        with pytest.raises(RuntimeError):
            ens.predict_graphs([s.graph for s in tiny_corpus])

    def test_unfitted_rejects_prediction(self):
        with pytest.raises(RuntimeError):
            EnsemblePredictor().predict_graphs([])
